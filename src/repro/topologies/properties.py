"""Graph-level analysis of NoC topologies.

Computes the quantities that appear in Table I of the paper (router radix,
network diameter, presence/usage of physically minimal paths) plus a few
additional metrics used by the design-principle scoring and by the
customization strategy (average hop count, link alignment, link lengths,
bisection width).
"""

from __future__ import annotations

from dataclasses import dataclass

import networkx as nx

from repro.topologies.base import Topology


@dataclass(frozen=True)
class TopologyProperties:
    """Summary of the graph-level properties of a topology.

    Attributes
    ----------
    name:
        Topology name.
    rows, cols, num_tiles, num_links:
        Size of the grid and the link count.
    router_radix:
        Maximum router radix (router-to-router links + endpoint ports).
    diameter:
        Network diameter in router-to-router hops.
    average_hop_count:
        Mean shortest-path hop count over all ordered tile pairs.
    fraction_aligned_links:
        Fraction of links that stay within a single row or column.
    fraction_short_links:
        Fraction of links connecting grid-adjacent tiles (length 1).
    max_link_length:
        Longest link, measured in tile pitches (Manhattan).
    average_link_length:
        Mean link length in tile pitches.
    minimal_paths_present:
        ``True`` if, for every tile pair, the topology contains *some* path
        whose physical length equals the Manhattan distance between the tiles
        (design principle ❹, column "Present" in Table I).
    minimal_paths_used:
        ``True`` if, for every tile pair, at least one *hop-minimal* path is
        also physically minimal, i.e. a routing algorithm that minimises the
        number of hops can use physically minimal paths (column "Used").
    bisection_links:
        Number of links crossing the vertical bisection of the grid.
    """

    name: str
    rows: int
    cols: int
    num_tiles: int
    num_links: int
    router_radix: int
    diameter: int
    average_hop_count: float
    fraction_aligned_links: float
    fraction_short_links: float
    max_link_length: int
    average_link_length: float
    minimal_paths_present: bool
    minimal_paths_used: bool
    bisection_links: int


def analyze_topology(topology: Topology) -> TopologyProperties:
    """Compute :class:`TopologyProperties` for ``topology``.

    The minimal-path analysis is exact (all-pairs) and runs in
    ``O(N * (N + L))`` which is instantaneous for the chip sizes considered in
    the paper (64-256 tiles).
    """
    topology.validate_connected()
    num_links = topology.num_links
    aligned = sum(1 for link in topology.links if topology.link_is_aligned(link))
    lengths = [topology.link_grid_length(link) for link in topology.links]
    short = sum(1 for length in lengths if length == 1)

    present, used = _minimal_path_analysis(topology)

    return TopologyProperties(
        name=topology.name,
        rows=topology.rows,
        cols=topology.cols,
        num_tiles=topology.num_tiles,
        num_links=num_links,
        router_radix=topology.router_radix(),
        diameter=topology.diameter(),
        average_hop_count=topology.average_hop_count(),
        fraction_aligned_links=aligned / num_links,
        fraction_short_links=short / num_links,
        max_link_length=max(lengths),
        average_link_length=sum(lengths) / num_links,
        minimal_paths_present=present,
        minimal_paths_used=used,
        bisection_links=bisection_link_count(topology),
    )


def bisection_link_count(topology: Topology) -> int:
    """Number of links crossing the vertical bisection of the tile grid.

    The grid is cut between column ``C//2 - 1`` and column ``C//2``; links with
    endpoints on both sides of the cut are counted.  For topologies on a
    single column the horizontal bisection is used instead.
    """
    if topology.cols >= 2:
        cut = topology.cols // 2
        return sum(
            1
            for link in topology.links
            if (topology.coord(link.src).col < cut) != (topology.coord(link.dst).col < cut)
        )
    cut = topology.rows // 2
    return sum(
        1
        for link in topology.links
        if (topology.coord(link.src).row < cut) != (topology.coord(link.dst).row < cut)
    )


def physical_link_length_graph(topology: Topology) -> nx.Graph:
    """Return a graph whose edge weights are physical link lengths (tile pitches)."""
    graph = nx.Graph()
    graph.add_nodes_from(range(topology.num_tiles))
    for link in topology.links:
        graph.add_edge(link.src, link.dst, length=topology.link_grid_length(link))
    return graph


def _minimal_path_analysis(topology: Topology) -> tuple[bool, bool]:
    """Return ``(minimal_paths_present, minimal_paths_used)`` (Table I columns)."""
    weighted = physical_link_length_graph(topology)

    # Shortest *physical* distance between all pairs.
    physical_distance = dict(nx.all_pairs_dijkstra_path_length(weighted, weight="length"))
    # Shortest *hop* distance between all pairs.
    hop_distance = dict(nx.all_pairs_shortest_path_length(topology.graph))

    present = True
    used = True
    for src in topology.tiles():
        src_coord = topology.coord(src)
        # Minimum physical length among hop-minimal paths, via a Dijkstra
        # restricted to edges that lie on some hop-minimal path from src.
        min_physical_on_hop_minimal = _min_length_on_hop_minimal_paths(
            topology, weighted, hop_distance[src], src
        )
        for dst in topology.tiles():
            if dst == src:
                continue
            dst_coord = topology.coord(dst)
            manhattan = abs(src_coord.row - dst_coord.row) + abs(src_coord.col - dst_coord.col)
            if physical_distance[src][dst] > manhattan:
                present = False
            if min_physical_on_hop_minimal[dst] > manhattan:
                used = False
        if not present and not used:
            break
    # If minimal paths are not even present they cannot be used.
    if not present:
        used = False
    return present, used


def _min_length_on_hop_minimal_paths(
    topology: Topology,
    weighted: nx.Graph,
    hops_from_src: dict[int, int],
    src: int,
) -> dict[int, float]:
    """Minimum physical path length from ``src`` restricted to hop-minimal paths.

    Hop-minimal paths from ``src`` form a DAG (edges go from hop level ``h`` to
    ``h+1``); a dynamic program over increasing hop level yields, for every
    destination, the physically shortest path among all hop-minimal paths.
    """
    best: dict[int, float] = {src: 0.0}
    # Process nodes in order of increasing hop count from src.
    for node in sorted(hops_from_src, key=hops_from_src.get):
        if node not in best:
            # Unreachable via recorded predecessors; should not happen in a
            # connected topology but guard anyway.
            continue
        level = hops_from_src[node]
        for neighbor in weighted.neighbors(node):
            if hops_from_src.get(neighbor) == level + 1:
                candidate = best[node] + weighted.edges[node, neighbor]["length"]
                if candidate < best.get(neighbor, float("inf")):
                    best[neighbor] = candidate
    return best
