"""Registry of topology generators.

Provides a single place to enumerate and instantiate all topologies that the
paper's evaluation compares (Figure 6), including the sparse Hamming graph
(which lives in :mod:`repro.core` but is registered here for uniform access).

Some topologies are only applicable for certain grid sizes (hypercube needs
power-of-two dimensions, SlimNoC needs ``R*C = 2*q^2``); the registry exposes
those applicability rules so that evaluation code can skip inapplicable
topologies exactly like the paper does.
"""

from __future__ import annotations

from typing import Callable

from repro.topologies.base import Topology
from repro.topologies.flattened_butterfly import FlattenedButterflyTopology
from repro.topologies.folded_torus import FoldedTorusTopology
from repro.topologies.hypercube import HypercubeTopology, hypercube_applicable
from repro.topologies.mesh import MeshTopology
from repro.topologies.ring import RingTopology
from repro.topologies.slimnoc import SlimNoCTopology, slimnoc_applicable
from repro.topologies.torus import TorusTopology
from repro.utils.validation import ValidationError

TopologyFactory = Callable[..., Topology]


def _make_sparse_hamming(
    rows: int, cols: int, endpoints_per_tile: int = 1, **kwargs
) -> Topology:
    # Imported lazily to avoid a circular import between repro.topologies and
    # repro.core (the sparse Hamming graph is built on top of the mesh).
    from repro.core.sparse_hamming import SparseHammingGraph

    return SparseHammingGraph(
        rows, cols, endpoints_per_tile=endpoints_per_tile, **kwargs
    )


def _make_ruche(rows: int, cols: int, endpoints_per_tile: int = 1, **kwargs) -> Topology:
    from repro.topologies.ruche import RucheTopology

    return RucheTopology(rows, cols, endpoints_per_tile=endpoints_per_tile, **kwargs)


TOPOLOGY_FACTORIES: dict[str, TopologyFactory] = {
    "ring": RingTopology,
    "mesh": MeshTopology,
    "torus": TorusTopology,
    "folded_torus": FoldedTorusTopology,
    "hypercube": HypercubeTopology,
    "slimnoc": SlimNoCTopology,
    "flattened_butterfly": FlattenedButterflyTopology,
    "ruche": _make_ruche,
    "sparse_hamming": _make_sparse_hamming,
}

# Canonical display names, matching the labels used in the paper's figures.
DISPLAY_NAMES: dict[str, str] = {
    "ring": "Ring",
    "mesh": "2D Mesh",
    "torus": "2D Torus",
    "folded_torus": "Folded 2D Torus",
    "hypercube": "Hypercube",
    "slimnoc": "SlimNoC",
    "flattened_butterfly": "Flattened Butterfly",
    "ruche": "Ruche Network",
    "sparse_hamming": "Sparse Hamming Graph",
}

# The topologies compared in Figure 6 of the paper, in plotting order.
PAPER_COMPARISON_ORDER: tuple[str, ...] = (
    "ring",
    "mesh",
    "torus",
    "folded_torus",
    "hypercube",
    "slimnoc",
    "flattened_butterfly",
    "sparse_hamming",
)


def available_topologies() -> list[str]:
    """Return the identifiers of all registered topology generators."""
    return sorted(TOPOLOGY_FACTORIES)


def is_applicable(name: str, rows: int, cols: int) -> bool:
    """Return ``True`` if topology ``name`` can be built for an ``R x C`` grid."""
    if name not in TOPOLOGY_FACTORIES:
        raise ValidationError(f"unknown topology {name!r}; known: {available_topologies()}")
    if name == "hypercube":
        return hypercube_applicable(rows, cols)
    if name == "slimnoc":
        return slimnoc_applicable(rows, cols)
    if name == "ring":
        return rows * cols >= 3
    return rows * cols >= 2


def applicable_topologies(rows: int, cols: int, names: tuple[str, ...] | None = None) -> list[str]:
    """Return the registered topologies that are applicable to an ``R x C`` grid.

    ``names`` restricts and orders the candidates; by default the paper's
    Figure 6 comparison order is used.
    """
    candidates = names if names is not None else PAPER_COMPARISON_ORDER
    return [name for name in candidates if is_applicable(name, rows, cols)]


def make_topology(name: str, rows: int, cols: int, endpoints_per_tile: int = 1, **kwargs) -> Topology:
    """Instantiate a registered topology by identifier.

    Extra keyword arguments are forwarded to the generator (e.g. ``s_r`` and
    ``s_c`` for the sparse Hamming graph, ``row_skip`` for Ruche networks).
    """
    if name not in TOPOLOGY_FACTORIES:
        raise ValidationError(f"unknown topology {name!r}; known: {available_topologies()}")
    if not is_applicable(name, rows, cols):
        raise ValidationError(
            f"topology {name!r} is not applicable to a {rows}x{cols} grid"
        )
    factory = TOPOLOGY_FACTORIES[name]
    return factory(rows, cols, endpoints_per_tile=endpoints_per_tile, **kwargs)
