"""Core topology data model.

A :class:`Topology` describes the link structure of a NoC built on a chip that
is organised as an ``R x C`` grid of identical *tiles* (Section II-A of the
paper).  Each tile contains one or more endpoints and one local router; NoC
links connect the local routers of different tiles.

Tiles are identified by integer indices ``0 .. R*C - 1`` in row-major order;
:class:`TileCoord` maps between indices and ``(row, col)`` grid positions.
Links are undirected at the topology level (the simulator expands each into a
pair of unidirectional channels).
"""

from __future__ import annotations

from dataclasses import dataclass
from functools import cached_property
from typing import Iterable, Iterator

import networkx as nx

from repro.utils.validation import ValidationError, check_type


@dataclass(frozen=True, order=True)
class TileCoord:
    """Grid position of a tile: row ``r`` (0-based) and column ``c`` (0-based)."""

    row: int
    col: int


@dataclass(frozen=True, order=True)
class Link:
    """An undirected router-to-router link between two tiles.

    ``src`` and ``dst`` are tile indices with ``src < dst`` (canonical order),
    so that a link has exactly one representation.
    """

    src: int
    dst: int

    def __post_init__(self) -> None:
        if self.src == self.dst:
            raise ValidationError(f"self-link on tile {self.src} is not allowed")
        if self.src > self.dst:
            raise ValidationError(
                f"Link endpoints must be canonically ordered (src < dst); "
                f"got src={self.src}, dst={self.dst}. Use Link.canonical()."
            )

    @staticmethod
    def canonical(a: int, b: int) -> "Link":
        """Create a link between tiles ``a`` and ``b`` in canonical order."""
        if a == b:
            raise ValidationError(f"self-link on tile {a} is not allowed")
        return Link(min(a, b), max(a, b))

    def other(self, tile: int) -> int:
        """Return the endpoint of the link that is not ``tile``."""
        if tile == self.src:
            return self.dst
        if tile == self.dst:
            return self.src
        raise ValidationError(f"tile {tile} is not an endpoint of {self}")


class Topology:
    """A NoC topology over an ``R x C`` grid of tiles.

    Parameters
    ----------
    rows, cols:
        Grid dimensions.  Both must be at least 1 and ``rows * cols >= 2``.
    links:
        Iterable of :class:`Link` (or ``(a, b)`` tile-index pairs).  Duplicate
        links are collapsed.
    name:
        Human-readable topology name (e.g. ``"2D Mesh"``).
    endpoints_per_tile:
        Number of endpoints (cores/memories) connected to each tile's local
        router.  Affects the router radix but not the link structure.
    """

    def __init__(
        self,
        rows: int,
        cols: int,
        links: Iterable[Link | tuple[int, int]],
        name: str,
        endpoints_per_tile: int = 1,
    ) -> None:
        check_type("rows", rows, int)
        check_type("cols", cols, int)
        check_type("name", name, str)
        check_type("endpoints_per_tile", endpoints_per_tile, int)
        if rows < 1 or cols < 1:
            raise ValidationError(f"rows and cols must be >= 1, got {rows}x{cols}")
        if rows * cols < 2:
            raise ValidationError("a topology needs at least 2 tiles")
        if endpoints_per_tile < 1:
            raise ValidationError("endpoints_per_tile must be >= 1")

        self._rows = rows
        self._cols = cols
        self._name = name
        self._endpoints_per_tile = endpoints_per_tile

        canonical_links: set[Link] = set()
        for item in links:
            if isinstance(item, Link):
                link = item
            else:
                a, b = item
                link = Link.canonical(int(a), int(b))
            self._check_tile_index(link.src)
            self._check_tile_index(link.dst)
            canonical_links.add(link)
        self._links: tuple[Link, ...] = tuple(sorted(canonical_links))

    # ------------------------------------------------------------------ basic
    @property
    def name(self) -> str:
        """Human-readable topology name."""
        return self._name

    @property
    def rows(self) -> int:
        """Number of tile rows ``R``."""
        return self._rows

    @property
    def cols(self) -> int:
        """Number of tile columns ``C``."""
        return self._cols

    @property
    def num_tiles(self) -> int:
        """Total number of tiles ``R * C``."""
        return self._rows * self._cols

    @property
    def endpoints_per_tile(self) -> int:
        """Number of endpoints attached to each tile's local router."""
        return self._endpoints_per_tile

    @property
    def links(self) -> tuple[Link, ...]:
        """All undirected links, in canonical sorted order."""
        return self._links

    @property
    def num_links(self) -> int:
        """Number of undirected links."""
        return len(self._links)

    # -------------------------------------------------------------- indexing
    def tile_index(self, row: int, col: int) -> int:
        """Return the tile index at grid position ``(row, col)``."""
        if not (0 <= row < self._rows and 0 <= col < self._cols):
            raise ValidationError(
                f"tile position ({row}, {col}) outside {self._rows}x{self._cols} grid"
            )
        return row * self._cols + col

    def coord(self, tile: int) -> TileCoord:
        """Return the grid position of tile index ``tile``."""
        self._check_tile_index(tile)
        return TileCoord(tile // self._cols, tile % self._cols)

    def tiles(self) -> Iterator[int]:
        """Iterate over all tile indices in row-major order."""
        return iter(range(self.num_tiles))

    def _check_tile_index(self, tile: int) -> None:
        check_type("tile", tile, int)
        if not (0 <= tile < self.num_tiles):
            raise ValidationError(
                f"tile index {tile} outside range [0, {self.num_tiles})"
            )

    # ------------------------------------------------------------------ graph
    @cached_property
    def graph(self) -> nx.Graph:
        """Undirected :class:`networkx.Graph` over tile indices.

        The graph always contains every tile as a node, even isolated ones
        (which indicate a mis-constructed topology and are rejected by
        :meth:`validate_connected`).
        """
        g = nx.Graph()
        g.add_nodes_from(range(self.num_tiles))
        g.add_edges_from((link.src, link.dst) for link in self._links)
        return g

    def neighbors(self, tile: int) -> list[int]:
        """Return the tiles directly connected to ``tile``, sorted."""
        self._check_tile_index(tile)
        return sorted(self.graph.neighbors(tile))

    def degree(self, tile: int) -> int:
        """Number of router-to-router links attached to ``tile``."""
        self._check_tile_index(tile)
        return self.graph.degree[tile]

    def has_link(self, a: int, b: int) -> bool:
        """Return ``True`` if an undirected link between tiles ``a`` and ``b`` exists."""
        self._check_tile_index(a)
        self._check_tile_index(b)
        if a == b:
            return False
        return Link.canonical(a, b) in set(self._links)

    def is_connected(self) -> bool:
        """Return ``True`` if every tile can reach every other tile."""
        return nx.is_connected(self.graph)

    def validate_connected(self) -> None:
        """Raise :class:`ValidationError` if the topology is not connected."""
        if not self.is_connected():
            raise ValidationError(f"topology '{self._name}' is not connected")

    # ------------------------------------------------------------ properties
    def max_degree(self) -> int:
        """Maximum number of router-to-router links at any tile."""
        return max(dict(self.graph.degree).values())

    def router_radix(self, tile: int | None = None) -> int:
        """Router radix: router-to-router links plus local endpoint ports.

        If ``tile`` is ``None``, the maximum radix over all tiles is returned
        (this is the number reported in Table I of the paper).
        """
        if tile is None:
            return self.max_degree() + self._endpoints_per_tile
        return self.degree(tile) + self._endpoints_per_tile

    def diameter(self) -> int:
        """Network diameter: maximum shortest-path hop count between tiles."""
        self.validate_connected()
        return nx.diameter(self.graph)

    def average_hop_count(self) -> float:
        """Average shortest-path hop count over all ordered tile pairs."""
        self.validate_connected()
        return nx.average_shortest_path_length(self.graph)

    def link_is_aligned(self, link: Link) -> bool:
        """Return ``True`` if the link stays within one row or one column.

        Aligned links are one of the *design for routability* criteria
        (principle ❷ of the paper): they can be routed straight through a
        single inter-tile channel.
        """
        a = self.coord(link.src)
        b = self.coord(link.dst)
        return a.row == b.row or a.col == b.col

    def link_grid_length(self, link: Link) -> int:
        """Manhattan length of the link measured in tile pitches."""
        a = self.coord(link.src)
        b = self.coord(link.dst)
        return abs(a.row - b.row) + abs(a.col - b.col)

    # -------------------------------------------------------------- mutation
    def with_endpoints_per_tile(self, endpoints_per_tile: int) -> "Topology":
        """Return a copy of this topology with a different endpoint count."""
        return Topology(
            self._rows,
            self._cols,
            self._links,
            self._name,
            endpoints_per_tile=endpoints_per_tile,
        )

    # ------------------------------------------------------------------ misc
    def __repr__(self) -> str:
        return (
            f"{type(self).__name__}(name={self._name!r}, grid={self._rows}x{self._cols}, "
            f"links={self.num_links})"
        )

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Topology):
            return NotImplemented
        return (
            self._rows == other._rows
            and self._cols == other._cols
            and self._links == other._links
            and self._endpoints_per_tile == other._endpoints_per_tile
        )

    def __hash__(self) -> int:
        return hash((self._rows, self._cols, self._links, self._endpoints_per_tile))


def grid_dimensions_for(num_tiles: int) -> tuple[int, int]:
    """Choose an ``R x C`` grid for ``num_tiles`` tiles, as square as possible.

    Prefers ``R <= C`` (wider than tall), which matches the aspect ratios used
    in the paper's evaluation (64 tiles -> 8x8, 128 tiles -> 8x16).
    """
    check_type("num_tiles", num_tiles, int)
    if num_tiles < 2:
        raise ValidationError("num_tiles must be >= 2")
    best_rows = 1
    for rows in range(1, int(num_tiles**0.5) + 1):
        if num_tiles % rows == 0:
            best_rows = rows
    return best_rows, num_tiles // best_rows
