"""Folded 2D torus topology (Figure 1d of the paper).

A 2D torus whose rows and columns are *folded* so that no physical link spans
more than two tile pitches: the logical ring ``0 - 1 - 2 - ... - (n-1) - 0`` of
a row is embedded in physical positions such that logically adjacent tiles sit
at most two positions apart.  The graph connecting *physical* grid positions
therefore consists of "skip-2" links plus the two end links of each row and
column.

The folded torus has the same diameter as the torus (``R/2 + C/2``) but avoids
the chip-spanning wrap-around links.  The price is that physically adjacent
tiles are no longer logically adjacent, so the topology does not provide
physically-minimal paths (Table I: "Minimal Paths Present: ✘").
"""

from __future__ import annotations

from repro.topologies.base import Link, Topology
from repro.utils.validation import ValidationError


def folded_cycle_links(n: int) -> list[tuple[int, int]]:
    """Return the links of a folded cycle over ``n`` physical positions.

    The folded embedding connects positions ``(i, i + 2)`` for all valid ``i``,
    plus the end links ``(0, 1)`` and ``(n-2, n-1)``.  The result is a single
    cycle of length ``n`` in which every link spans at most two positions.
    """
    if n < 3:
        raise ValidationError("a folded cycle needs at least 3 positions")
    links = [(i, i + 2) for i in range(n - 2)]
    links.append((0, 1))
    links.append((n - 2, n - 1))
    return links


def folded_torus_links(rows: int, cols: int) -> list[Link]:
    """Return the links of a folded 2D torus over an ``rows x cols`` grid."""
    links: list[Link] = []
    for r in range(rows):
        if cols >= 3:
            for a, b in folded_cycle_links(cols):
                links.append(Link.canonical(r * cols + a, r * cols + b))
        elif cols == 2:
            links.append(Link.canonical(r * cols, r * cols + 1))
    for c in range(cols):
        if rows >= 3:
            for a, b in folded_cycle_links(rows):
                links.append(Link.canonical(a * cols + c, b * cols + c))
        elif rows == 2:
            links.append(Link.canonical(c, cols + c))
    return links


class FoldedTorusTopology(Topology):
    """Folded 2D torus: torus connectivity without chip-spanning links."""

    def __init__(self, rows: int, cols: int, endpoints_per_tile: int = 1) -> None:
        super().__init__(
            rows,
            cols,
            folded_torus_links(rows, cols),
            name="Folded 2D Torus",
            endpoints_per_tile=endpoints_per_tile,
        )

    def expected_diameter(self) -> int:
        """Diameter formula from Table I: ``R/2 + C/2``."""
        return self.rows // 2 + self.cols // 2
