"""Ring topology (Figure 1a of the paper).

All tiles are connected in a single cycle.  On a 2D grid of tiles the cycle is
embedded as a boustrophedon ("snake") path through the rows with a closing
segment along the first column, which keeps almost all links between adjacent
tiles (short links) at the price of the worst network diameter of all
considered topologies (``R*C / 2``).
"""

from __future__ import annotations

from repro.topologies.base import Link, Topology
from repro.utils.validation import ValidationError


def ring_order(rows: int, cols: int) -> list[int]:
    """Return tile indices in the order they are visited by the ring cycle.

    The path snakes through the rows (left-to-right in even rows,
    right-to-left in odd rows).  The final tile of the snake is adjacent to
    the first column, so the closing link of the cycle runs along column 0.
    """
    order: list[int] = []
    for r in range(rows):
        cols_in_row = range(cols) if r % 2 == 0 else range(cols - 1, -1, -1)
        for c in cols_in_row:
            order.append(r * cols + c)
    return order


def ring_links(rows: int, cols: int) -> list[Link]:
    """Return the links of the snake-embedded ring over an ``rows x cols`` grid."""
    order = ring_order(rows, cols)
    links = [Link.canonical(order[i], order[i + 1]) for i in range(len(order) - 1)]
    if len(order) > 2:
        links.append(Link.canonical(order[-1], order[0]))
    return links


class RingTopology(Topology):
    """Ring: the links form a single cycle visiting every tile."""

    def __init__(self, rows: int, cols: int, endpoints_per_tile: int = 1) -> None:
        if rows * cols < 3:
            raise ValidationError("a ring needs at least 3 tiles")
        super().__init__(
            rows,
            cols,
            ring_links(rows, cols),
            name="Ring",
            endpoints_per_tile=endpoints_per_tile,
        )

    def expected_diameter(self) -> int:
        """Diameter formula from Table I: ``R*C / 2``."""
        return (self.rows * self.cols) // 2
