"""Per-phase analysis of trace-replay statistics.

Trace replays report one :class:`~repro.simulator.statistics.PhaseStats` per
named workload phase (DNN layers, collective steps, stencil iterations, ...).
This module provides the helpers the examples and the ``repro replay`` CLI
build on: flat per-phase tables, bottleneck and saturation detection,
phase-by-phase speedup between two topologies replaying the same trace, and
a two-metric (latency down, throughput up) Pareto front across labelled
replays — the per-phase analogue of :mod:`repro.analysis.pareto`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Any, Iterable, Mapping

from repro.simulator.statistics import PhaseStats, SimulationStats
from repro.utils.validation import ValidationError

if TYPE_CHECKING:  # imported for type hints only; no runtime dependency
    from repro.toolchain.results import PredictionResult


def prediction_phases(prediction: "PredictionResult") -> Mapping[str, PhaseStats]:
    """Per-phase stats of a workload prediction, live or cache-rebuilt.

    A live replay carries the full :class:`SimulationStats` under
    ``details["replay"]``; a cached or parallel-computed prediction keeps
    only the serializable ``details["phases"]`` mapping.  Both hold
    :class:`PhaseStats`-shaped objects.  Empty for synthetic predictions and
    for replays of unphased traces.
    """
    replay = prediction.details.get("replay")
    if replay is not None:
        return replay.phases
    return prediction.details.get("phases") or {}


def prediction_undelivered(prediction: "PredictionResult") -> int:
    """Packets a workload replay created but never delivered.

    Prefers the replay's overall counters (live ``details["replay"]``, or
    the serialized ``details["replay_counts"]`` of a cached prediction),
    which also cover unphased traces; falls back to summing the per-phase
    counters.  Returns 0 when the prediction carries no replay information
    (synthetic predictions).
    """
    replay = prediction.details.get("replay")
    if replay is not None:
        return replay.packets_created - replay.packets_delivered
    counts = prediction.details.get("replay_counts")
    if counts is not None:
        return int(counts["packets_created"]) - int(counts["packets_delivered"])
    return sum(
        phase.packets_created - phase.packets_delivered
        for phase in prediction_phases(prediction).values()
    )


def phase_records(stats: SimulationStats) -> list[dict[str, Any]]:
    """Flat tabular rows of a replay's per-phase statistics, in trace order.

    Each row carries the phase window, packet/flit counters, offered load,
    delivered throughput, latency aggregates and the saturation flag —
    ready for CSV export or table printing.
    """
    rows = []
    for phase in stats.phases.values():
        rows.append(
            {
                "phase": phase.name,
                "start_cycle": phase.start_cycle,
                "end_cycle": phase.end_cycle,
                "packets_created": phase.packets_created,
                "packets_delivered": phase.packets_delivered,
                "flits_delivered": phase.flits_delivered,
                "offered_load": phase.offered_load,
                "throughput": phase.throughput,
                "average_packet_latency": phase.average_packet_latency,
                "p99_packet_latency": phase.p99_packet_latency,
                "average_hops": phase.average_hops,
                "saturated": phase.saturated,
            }
        )
    return rows


def bottleneck_phase(stats: SimulationStats) -> PhaseStats | None:
    """The phase with the highest average packet latency (``None`` if unphased).

    Ties are broken towards the earlier phase, so the result is
    deterministic for replays with identical per-phase latencies.
    """
    worst: PhaseStats | None = None
    for phase in stats.phases.values():
        if worst is None or phase.average_packet_latency > worst.average_packet_latency:
            worst = phase
    return worst


def saturated_phases(stats: SimulationStats) -> list[str]:
    """Names of the phases whose packets were not all delivered.

    A phase saturates when packets it created were still undelivered when
    the run hit its drain limit (see
    :attr:`~repro.simulator.statistics.PhaseStats.saturated`).
    """
    return [phase.name for phase in stats.phases.values() if phase.saturated]


def phase_speedups(
    baseline: SimulationStats, candidate: SimulationStats
) -> dict[str, float]:
    """Per-phase latency speedup of ``candidate`` over ``baseline``.

    Both replays must cover the same phases (i.e. replay the same trace).
    A value above 1.0 means the candidate topology delivered that phase's
    packets with proportionally lower average latency.
    """
    if set(baseline.phases) != set(candidate.phases):
        raise ValidationError(
            "phase_speedups needs replays of the same trace; phase sets differ: "
            f"{sorted(baseline.phases)} vs {sorted(candidate.phases)}"
        )
    speedups = {}
    for name, base in baseline.phases.items():
        other = candidate.phases[name]
        if other.average_packet_latency > 0:
            speedups[name] = base.average_packet_latency / other.average_packet_latency
        else:
            speedups[name] = float("inf") if base.average_packet_latency > 0 else 1.0
    return speedups


@dataclass(frozen=True)
class PhasePoint:
    """One (replay label, phase) position in the latency/throughput plane."""

    label: str
    phase: str
    average_packet_latency: float
    throughput: float

    def dominates(self, other: "PhasePoint") -> bool:
        """``True`` if at least as good in both metrics and better in one."""
        at_least_as_good = (
            self.average_packet_latency <= other.average_packet_latency
            and self.throughput >= other.throughput
        )
        strictly_better = (
            self.average_packet_latency < other.average_packet_latency
            or self.throughput > other.throughput
        )
        return at_least_as_good and strictly_better


def phase_points(label: str, stats: SimulationStats) -> list[PhasePoint]:
    """Build :class:`PhasePoint` entries for every phase of one replay."""
    return [
        PhasePoint(
            label=label,
            phase=phase.name,
            average_packet_latency=phase.average_packet_latency,
            throughput=phase.throughput,
        )
        for phase in stats.phases.values()
    ]


def phase_pareto_front(points: Iterable[PhasePoint]) -> list[PhasePoint]:
    """Non-dominated subset of phase points (order preserved).

    Applied per phase across labelled replays (``phase_pareto_fronts``)
    this answers "which topology wins which application phase"; applied to
    one replay's own phases it exposes the latency/throughput spread of the
    workload.
    """
    point_list = list(points)
    return [
        candidate
        for candidate in point_list
        if not any(
            other.dominates(candidate)
            for other in point_list
            if other is not candidate
        )
    ]


def phase_pareto_fronts(
    replays: Mapping[str, SimulationStats],
) -> dict[str, list[PhasePoint]]:
    """Per-phase Pareto fronts across several labelled replays of one trace.

    Parameters
    ----------
    replays:
        ``{label: stats}`` of replays of the *same* trace on different
        topologies or configurations.

    Returns
    -------
    dict
        For every phase name, the non-dominated ``(label, phase)`` points —
        the replays that are unbeaten on that phase's latency/throughput
        trade-off.
    """
    phase_names: list[str] = []
    for stats in replays.values():
        for name in stats.phases:
            if name not in phase_names:
                phase_names.append(name)
    fronts: dict[str, list[PhasePoint]] = {}
    for name in phase_names:
        contenders = [
            PhasePoint(
                label=label,
                phase=name,
                average_packet_latency=stats.phases[name].average_packet_latency,
                throughput=stats.phases[name].throughput,
            )
            for label, stats in replays.items()
            if name in stats.phases
        ]
        fronts[name] = phase_pareto_front(contenders)
    return fronts


__all__ = [
    "PhasePoint",
    "bottleneck_phase",
    "phase_pareto_front",
    "phase_pareto_fronts",
    "phase_points",
    "phase_records",
    "phase_speedups",
    "prediction_phases",
    "prediction_undelivered",
    "saturated_phases",
]
