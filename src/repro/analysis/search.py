"""Analysis of topology-search results: trajectories and winner comparisons.

Companions of :mod:`repro.optimize`: flat tabular views of the two-stage
search trajectory (ready for CSV export or table printing, like
:func:`repro.analysis.phases.phase_records` for replays), per-family
screening summaries, and the winner-vs-baseline comparison — overall metrics
plus, for workload objectives, the per-phase latency speedups built on
:func:`repro.analysis.phases.phase_speedups`-style arithmetic.
"""

from __future__ import annotations

import json
from typing import TYPE_CHECKING, Any

from repro.analysis.phases import prediction_phases
from repro.utils.validation import ValidationError

if TYPE_CHECKING:  # imported for type hints only; no runtime dependency
    from repro.optimize.search import ScreenRecord, SearchResult


def trajectory_records(result: "SearchResult") -> list[dict[str, Any]]:
    """Flat tabular rows of the whole search trajectory, stage by stage.

    One row per screening evaluation (``stage == "screen"``) followed by one
    row per cycle-accurate evaluation (``stage == "rung<k>"``, ranked best
    first inside each rung).  Scores are canonical lower-is-better values.
    """
    rows: list[dict[str, Any]] = []
    for record in result.screening:
        rows.append(
            {
                "stage": "screen",
                "topology": record.candidate.topology,
                "configuration": json.dumps(
                    dict(record.candidate.topology_kwargs), sort_keys=True
                ),
                "feasible": record.feasible,
                "reasons": "; ".join(record.reasons),
                "score": record.score,
                "verified": record.verified,
                "cached": False,
            }
        )
    for rung in result.rungs:
        for entry in rung.entries:
            rows.append(
                {
                    "stage": f"rung{rung.rung}",
                    "topology": entry.candidate.topology,
                    "configuration": json.dumps(
                        dict(entry.candidate.topology_kwargs), sort_keys=True
                    ),
                    "feasible": True,
                    "reasons": "",
                    "score": entry.score,
                    "verified": True,
                    "cached": entry.cached,
                }
            )
    return rows


def best_screened_per_family(result: "SearchResult") -> dict[str, "ScreenRecord"]:
    """Best feasible screening record of every topology family.

    Summarises where each family's sweet spot sits before any simulation ran
    — useful to see how far the winning family pulled ahead already in the
    cheap models.
    """
    best: dict[str, "ScreenRecord"] = {}
    for record in result.screening:
        if not record.feasible or record.score is None:
            continue
        current = best.get(record.candidate.topology)
        if current is None or record.score < (current.score or float("inf")):
            best[record.candidate.topology] = record
    return best


def compare_with_baseline(result: "SearchResult") -> dict[str, Any]:
    """Winner-vs-baseline comparison of a search result.

    Returns
    -------
    dict
        Overall metric ratios (latency speedup, throughput ratio, area and
        power deltas) plus ``phase_speedups`` — per-phase latency speedups of
        the winner over the baseline — when both predictions carry the same
        replay phases (workload objectives).

    Raises
    ------
    ValidationError
        When the search ran without a baseline.
    """
    if result.baseline_prediction is None:
        raise ValidationError(
            "the search ran without a baseline; set SearchSpec.baseline"
        )
    winner = result.winner_prediction
    baseline = result.baseline_prediction
    comparison: dict[str, Any] = {
        "winner": result.winner.describe(),
        "baseline": baseline.topology_name,
        "objective_speedup": result.speedup_over_baseline,
        "latency_speedup": (
            baseline.zero_load_latency_cycles / winner.zero_load_latency_cycles
            if winner.zero_load_latency_cycles > 0
            else float("inf")
        ),
        "throughput_ratio": (
            winner.saturation_throughput / baseline.saturation_throughput
            if baseline.saturation_throughput > 0
            else float("inf")
        ),
        "area_overhead_delta": winner.area_overhead - baseline.area_overhead,
        "power_delta_w": winner.noc_power_w - baseline.noc_power_w,
    }
    winner_phases = prediction_phases(winner)
    baseline_phases = prediction_phases(baseline)
    if winner_phases and set(winner_phases) == set(baseline_phases):
        speedups: dict[str, float] = {}
        for name, base in baseline_phases.items():
            other = winner_phases[name]
            if other.average_packet_latency > 0:
                speedups[name] = (
                    base.average_packet_latency / other.average_packet_latency
                )
            else:
                speedups[name] = (
                    float("inf") if base.average_packet_latency > 0 else 1.0
                )
        comparison["phase_speedups"] = speedups
    return comparison


__all__ = [
    "best_screened_per_family",
    "compare_with_baseline",
    "trajectory_records",
]
