"""Design-space exploration over sparse-Hamming-graph configurations.

The defining feature of the sparse Hamming graph is its ``2^(R+C-4)``-point
configuration space spanning the range between the 2D mesh and the flattened
butterfly.  This module sweeps (exhaustively for small grids, sampled for
large ones) over configurations and records the cost/performance trade-off of
each — the data behind the customization strategy and the ablation benchmarks.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Iterable

from repro.core.config_space import enumerate_configurations, random_configuration
from repro.core.sparse_hamming import SparseHammingGraph
from repro.toolchain.results import PredictionResult
from repro.utils.rng import make_rng
from repro.utils.validation import ValidationError, check_type


@dataclass(frozen=True)
class DesignSpaceSample:
    """Prediction of one sparse-Hamming-graph configuration."""

    s_r: frozenset[int]
    s_c: frozenset[int]
    num_links: int
    prediction: PredictionResult

    @property
    def area_overhead(self) -> float:
        """NoC area overhead of this configuration."""
        return self.prediction.area_overhead

    @property
    def saturation_throughput(self) -> float:
        """Saturation throughput of this configuration."""
        return self.prediction.saturation_throughput


Predictor = Callable[[SparseHammingGraph], PredictionResult]


def sweep_sparse_hamming_configurations(
    rows: int,
    cols: int,
    predictor: Predictor,
    endpoints_per_tile: int = 1,
    max_configurations: int | None = None,
    seed: int = 0,
) -> list[DesignSpaceSample]:
    """Evaluate sparse-Hamming-graph configurations with ``predictor``.

    If the configuration space is small enough (or ``max_configurations`` is
    ``None``) it is enumerated exhaustively; otherwise ``max_configurations``
    distinct configurations are sampled uniformly at random (always including
    the mesh and the flattened butterfly endpoints of the design space).
    """
    check_type("rows", rows, int)
    check_type("cols", cols, int)
    if max_configurations is not None and max_configurations < 2:
        raise ValidationError("max_configurations must be >= 2 (mesh + flattened butterfly)")

    configurations: list[tuple[frozenset[int], frozenset[int]]] = []
    total = 2 ** (max(cols - 2, 0) + max(rows - 2, 0))
    if max_configurations is None or total <= max_configurations:
        configurations = list(enumerate_configurations(rows, cols))
    else:
        seen: set[tuple[frozenset[int], frozenset[int]]] = set()
        mesh = (frozenset(), frozenset())
        butterfly = (frozenset(range(2, cols)), frozenset(range(2, rows)))
        for endpoint in (mesh, butterfly):
            seen.add(endpoint)
            configurations.append(endpoint)
        rng = make_rng(seed, stream="design-space")
        while len(configurations) < max_configurations:
            candidate = random_configuration(rows, cols, rng=rng)
            if candidate not in seen:
                seen.add(candidate)
                configurations.append(candidate)

    samples: list[DesignSpaceSample] = []
    for s_r, s_c in configurations:
        topology = SparseHammingGraph(
            rows, cols, s_r=s_r, s_c=s_c, endpoints_per_tile=endpoints_per_tile
        )
        prediction = predictor(topology)
        samples.append(
            DesignSpaceSample(
                s_r=s_r,
                s_c=s_c,
                num_links=topology.num_links,
                prediction=prediction,
            )
        )
    return samples


def trade_off_curve(samples: Iterable[DesignSpaceSample]) -> list[DesignSpaceSample]:
    """Return the cost-performance frontier of a design-space sweep.

    The frontier contains every sample for which no other sample has both a
    lower (or equal) area overhead and a higher (or equal) saturation
    throughput with at least one strict inequality — the curve that the
    customization strategy walks along when trading area for throughput.
    """
    sample_list = list(samples)
    frontier = []
    for candidate in sample_list:
        dominated = any(
            other.area_overhead <= candidate.area_overhead
            and other.saturation_throughput >= candidate.saturation_throughput
            and (
                other.area_overhead < candidate.area_overhead
                or other.saturation_throughput > candidate.saturation_throughput
            )
            for other in sample_list
            if other is not candidate
        )
        if not dominated:
            frontier.append(candidate)
    return sorted(frontier, key=lambda sample: sample.area_overhead)
