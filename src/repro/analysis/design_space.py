"""Design-space exploration over sparse-Hamming-graph configurations.

The defining feature of the sparse Hamming graph is its ``2^(R+C-4)``-point
configuration space spanning the range between the 2D mesh and the flattened
butterfly.  This module sweeps (exhaustively for small grids, sampled for
large ones) over configurations and records the cost/performance trade-off of
each — the data behind the customization strategy and the ablation benchmarks.

Two execution paths are provided: the legacy predictor-callable interface
(:func:`sweep_sparse_hamming_configurations`) and the declarative
experiment-API path (:func:`design_space_campaign` /
:func:`sweep_design_space`), which routes every configuration through
:class:`~repro.experiments.ExperimentRunner` and therefore inherits on-disk
memoization and process-parallel execution for free.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Any, Callable, Iterable, Mapping

from repro.core.config_space import enumerate_configurations, random_configuration
from repro.core.sparse_hamming import SparseHammingGraph
from repro.toolchain.results import PredictionResult
from repro.utils.rng import make_rng
from repro.utils.validation import ValidationError, check_type

if TYPE_CHECKING:  # imported lazily at runtime to avoid a circular import
    from repro.experiments.campaign import Campaign
    from repro.experiments.runner import ExperimentRunner


@dataclass(frozen=True)
class DesignSpaceSample:
    """Prediction of one sparse-Hamming-graph configuration."""

    s_r: frozenset[int]
    s_c: frozenset[int]
    num_links: int
    prediction: PredictionResult

    @property
    def area_overhead(self) -> float:
        """NoC area overhead of this configuration."""
        return self.prediction.area_overhead

    @property
    def saturation_throughput(self) -> float:
        """Saturation throughput of this configuration."""
        return self.prediction.saturation_throughput


Predictor = Callable[[SparseHammingGraph], PredictionResult]


def select_configurations(
    rows: int,
    cols: int,
    max_configurations: int | None = None,
    seed: int = 0,
) -> list[tuple[frozenset[int], frozenset[int]]]:
    """Choose the ``(S_R, S_C)`` configurations a design-space sweep evaluates.

    Exhaustive when the space fits within ``max_configurations`` (or no limit
    is given); otherwise a uniform random sample that always includes the mesh
    and flattened-butterfly endpoints.
    """
    check_type("rows", rows, int)
    check_type("cols", cols, int)
    if max_configurations is not None and max_configurations < 2:
        raise ValidationError("max_configurations must be >= 2 (mesh + flattened butterfly)")

    total = 2 ** (max(cols - 2, 0) + max(rows - 2, 0))
    if max_configurations is None or total <= max_configurations:
        return list(enumerate_configurations(rows, cols))

    configurations: list[tuple[frozenset[int], frozenset[int]]] = []
    seen: set[tuple[frozenset[int], frozenset[int]]] = set()
    mesh = (frozenset(), frozenset())
    butterfly = (frozenset(range(2, cols)), frozenset(range(2, rows)))
    for endpoint in (mesh, butterfly):
        seen.add(endpoint)
        configurations.append(endpoint)
    rng = make_rng(seed, stream="design-space")
    while len(configurations) < max_configurations:
        candidate = random_configuration(rows, cols, rng=rng)
        if candidate not in seen:
            seen.add(candidate)
            configurations.append(candidate)
    return configurations


def sweep_sparse_hamming_configurations(
    rows: int,
    cols: int,
    predictor: Predictor,
    endpoints_per_tile: int = 1,
    max_configurations: int | None = None,
    seed: int = 0,
) -> list[DesignSpaceSample]:
    """Evaluate sparse-Hamming-graph configurations with ``predictor``.

    If the configuration space is small enough (or ``max_configurations`` is
    ``None``) it is enumerated exhaustively; otherwise ``max_configurations``
    distinct configurations are sampled uniformly at random (always including
    the mesh and the flattened butterfly endpoints of the design space).
    """
    configurations = select_configurations(rows, cols, max_configurations, seed)
    samples: list[DesignSpaceSample] = []
    for s_r, s_c in configurations:
        topology = SparseHammingGraph(
            rows, cols, s_r=s_r, s_c=s_c, endpoints_per_tile=endpoints_per_tile
        )
        prediction = predictor(topology)
        samples.append(
            DesignSpaceSample(
                s_r=s_r,
                s_c=s_c,
                num_links=topology.num_links,
                prediction=prediction,
            )
        )
    return samples


def trade_off_curve(samples: Iterable[DesignSpaceSample]) -> list[DesignSpaceSample]:
    """Return the cost-performance frontier of a design-space sweep.

    The frontier contains every sample for which no other sample has both a
    lower (or equal) area overhead and a higher (or equal) saturation
    throughput with at least one strict inequality — the curve that the
    customization strategy walks along when trading area for throughput.
    """
    sample_list = list(samples)
    frontier = []
    for candidate in sample_list:
        dominated = any(
            other.area_overhead <= candidate.area_overhead
            and other.saturation_throughput >= candidate.saturation_throughput
            and (
                other.area_overhead < candidate.area_overhead
                or other.saturation_throughput > candidate.saturation_throughput
            )
            for other in sample_list
            if other is not candidate
        )
        if not dominated:
            frontier.append(candidate)
    return sorted(frontier, key=lambda sample: sample.area_overhead)


# ------------------------------------------------- experiment-API execution
def design_space_campaign(
    rows: int,
    cols: int,
    scenario: str | None = None,
    arch: Mapping[str, Any] | None = None,
    sim: Mapping[str, Any] | None = None,
    traffic: str = "uniform",
    performance_mode: str = "analytical",
    endpoints_per_tile: int | None = None,
    max_configurations: int | None = None,
    seed: int = 0,
) -> "Campaign":
    """Build the campaign that sweeps sparse-Hamming-graph configurations.

    Each selected ``(S_R, S_C)`` configuration becomes one
    :class:`~repro.experiments.ExperimentSpec`, so the sweep is serializable,
    memoizable and parallelizable like any other campaign.
    """
    from repro.experiments.campaign import Campaign
    from repro.experiments.spec import ExperimentSpec

    specs = []
    for s_r, s_c in select_configurations(rows, cols, max_configurations, seed):
        kwargs: dict[str, Any] = {"s_r": sorted(s_r), "s_c": sorted(s_c)}
        if endpoints_per_tile is not None:
            kwargs["endpoints_per_tile"] = endpoints_per_tile
        specs.append(
            ExperimentSpec(
                topology="sparse_hamming",
                rows=rows,
                cols=cols,
                topology_kwargs=kwargs,
                scenario=scenario,
                arch=arch or {},
                traffic=traffic,
                performance_mode=performance_mode,
                sim=sim or {},
            )
        )
    return Campaign(specs=specs, name=f"design-space-{rows}x{cols}")


def sweep_design_space(
    rows: int,
    cols: int,
    runner: "ExperimentRunner | None" = None,
    parallel: int | None = None,
    **campaign_kwargs,
) -> list[DesignSpaceSample]:
    """Design-space sweep routed through the experiment runner.

    Equivalent to :func:`sweep_sparse_hamming_configurations` but executed via
    :class:`~repro.experiments.ExperimentRunner`, so results are memoized on
    disk when the runner has a cache directory and can run process-parallel.
    """
    from repro.experiments.runner import ExperimentRunner

    campaign = design_space_campaign(rows, cols, **campaign_kwargs)
    runner = runner or ExperimentRunner()
    results = runner.run(campaign, parallel=parallel)
    samples = []
    for result in results:
        kwargs = result.spec.topology_kwargs
        s_r = frozenset(kwargs["s_r"])
        s_c = frozenset(kwargs["s_c"])
        # num_links is a property of the graph, not of the prediction; rebuild
        # the (cheap) link structure so cached results stay self-contained.
        topology = SparseHammingGraph(rows, cols, s_r=s_r, s_c=s_c)
        samples.append(
            DesignSpaceSample(
                s_r=s_r,
                s_c=s_c,
                num_links=topology.num_links,
                prediction=result.prediction,
            )
        )
    return samples
