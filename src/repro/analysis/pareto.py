"""Cost-performance trade-off analysis (the structure behind Figure 6).

The paper compares topologies along four metrics — area overhead and power
(cost, lower is better) and saturation throughput (higher is better) and
zero-load latency (lower is better) — and observes that no topology dominates
all others; instead each reaches a certain trade-off.  This module provides
the Pareto-front computation over prediction results and the "best topology
within an area budget" selection that expresses the paper's design goal
(maximise throughput, then minimise latency, subject to at most 40% area
overhead).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Sequence

from repro.toolchain.results import PredictionResult


@dataclass(frozen=True)
class ParetoPoint:
    """One topology's position in the four-metric comparison."""

    name: str
    area_overhead: float
    noc_power_w: float
    zero_load_latency_cycles: float
    saturation_throughput: float

    @staticmethod
    def from_prediction(prediction: PredictionResult) -> "ParetoPoint":
        """Build a point from a toolchain prediction."""
        return ParetoPoint(
            name=prediction.topology_name,
            area_overhead=prediction.area_overhead,
            noc_power_w=prediction.noc_power_w,
            zero_load_latency_cycles=prediction.zero_load_latency_cycles,
            saturation_throughput=prediction.saturation_throughput,
        )

    def dominates(self, other: "ParetoPoint") -> bool:
        """``True`` if this point is at least as good in all metrics and better in one."""
        at_least_as_good = (
            self.area_overhead <= other.area_overhead
            and self.noc_power_w <= other.noc_power_w
            and self.zero_load_latency_cycles <= other.zero_load_latency_cycles
            and self.saturation_throughput >= other.saturation_throughput
        )
        strictly_better = (
            self.area_overhead < other.area_overhead
            or self.noc_power_w < other.noc_power_w
            or self.zero_load_latency_cycles < other.zero_load_latency_cycles
            or self.saturation_throughput > other.saturation_throughput
        )
        return at_least_as_good and strictly_better


def pareto_front(points: Iterable[ParetoPoint]) -> list[ParetoPoint]:
    """Return the non-dominated subset of ``points`` (order preserved)."""
    point_list = list(points)
    front = []
    for candidate in point_list:
        if not any(other.dominates(candidate) for other in point_list if other is not candidate):
            front.append(candidate)
    return front


def best_within_area_budget(
    predictions: Sequence[PredictionResult],
    max_area_overhead: float = 0.40,
) -> PredictionResult | None:
    """Select the best prediction under the paper's design goal.

    "Best" means: among all topologies whose area overhead does not exceed the
    budget, the one with the highest saturation throughput; ties (within half
    a percentage point of capacity) are broken by lower zero-load latency.
    Returns ``None`` if no topology fits the budget.
    """
    feasible = [p for p in predictions if p.area_overhead <= max_area_overhead]
    if not feasible:
        return None
    best = feasible[0]
    for candidate in feasible[1:]:
        gain = candidate.saturation_throughput - best.saturation_throughput
        if gain > 0.005:
            best = candidate
        elif abs(gain) <= 0.005 and (
            candidate.zero_load_latency_cycles < best.zero_load_latency_cycles
        ):
            best = candidate
    return best


def latency_rank(predictions: Sequence[PredictionResult], name: str) -> int:
    """1-based rank of topology ``name`` by zero-load latency (1 = lowest latency)."""
    ordered = sorted(predictions, key=lambda p: p.zero_load_latency_cycles)
    for index, prediction in enumerate(ordered, start=1):
        if prediction.topology_name == name:
            return index
    raise ValueError(f"no prediction named {name!r}")
