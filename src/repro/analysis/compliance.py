"""Table I reproduction: compliance of topologies with the design principles.

For a given grid size this module instantiates every applicable topology,
scores it against the four design principles of Section II (using the
graph-derived ratings of :mod:`repro.core.design_principles`), and adds the
closed-form columns of Table I (router radix formula, diameter formula, number
of configurations).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.config_space import configuration_count
from repro.core.design_principles import DesignPrincipleScores, score_design_principles
from repro.topologies.base import Topology
from repro.topologies.registry import (
    DISPLAY_NAMES,
    PAPER_COMPARISON_ORDER,
    is_applicable,
    make_topology,
)


@dataclass(frozen=True)
class ComplianceRow:
    """One row of the Table I reproduction."""

    topology_key: str
    topology_name: str
    scores: DesignPrincipleScores
    configurations: int

    def as_dict(self) -> dict[str, str]:
        """Row in the same column layout as Table I."""
        row = self.scores.as_row()
        row["Topology"] = self.topology_name
        row["#Configurations"] = str(self.configurations)
        return row


def _num_configurations(key: str, rows: int, cols: int) -> int:
    """Number of distinct configurations of a topology family (Table I, last column)."""
    if key == "sparse_hamming":
        return configuration_count(rows, cols)
    # The established topologies have exactly one configuration per grid when
    # they are applicable at all (0 otherwise — handled by the caller skipping
    # inapplicable topologies).
    return 1


def compliance_table(
    rows: int,
    cols: int,
    topology_names: tuple[str, ...] | None = None,
    sparse_hamming_kwargs: dict | None = None,
) -> list[ComplianceRow]:
    """Compute the Table I rows for all applicable topologies on an ``R x C`` grid.

    ``sparse_hamming_kwargs`` selects which sparse-Hamming-graph configuration
    is scored for the principle columns (Table I reports achievable *ranges*;
    the default scores a mid-density configuration with ``S_R = {2}``,
    ``S_C = {2}``).
    """
    names = topology_names if topology_names is not None else PAPER_COMPARISON_ORDER
    results: list[ComplianceRow] = []
    for key in names:
        if not is_applicable(key, rows, cols):
            continue
        kwargs: dict = {}
        if key == "sparse_hamming":
            kwargs = sparse_hamming_kwargs or {"s_r": {2}, "s_c": {2}}
        topology: Topology = make_topology(key, rows, cols, **kwargs)
        scores = score_design_principles(topology)
        results.append(
            ComplianceRow(
                topology_key=key,
                topology_name=DISPLAY_NAMES[key],
                scores=scores,
                configurations=_num_configurations(key, rows, cols),
            )
        )
    return results


def format_compliance_table(table: list[ComplianceRow]) -> str:
    """Render the compliance table as aligned plain text (Table I layout)."""
    if not table:
        return "(no applicable topologies)"
    columns = list(table[0].as_dict().keys())
    rows = [row.as_dict() for row in table]
    widths = {
        column: max(len(column), *(len(str(row[column])) for row in rows)) for column in columns
    }
    header = " | ".join(column.ljust(widths[column]) for column in columns)
    separator = "-+-".join("-" * widths[column] for column in columns)
    lines = [header, separator]
    for row in rows:
        lines.append(" | ".join(str(row[column]).ljust(widths[column]) for column in columns))
    return "\n".join(lines)
