"""Analysis utilities: Table I compliance, Pareto fronts, design-space,
per-phase workload statistics, and topology-search trajectories."""

from repro.analysis.compliance import ComplianceRow, compliance_table, format_compliance_table
from repro.analysis.pareto import (
    ParetoPoint,
    pareto_front,
    best_within_area_budget,
    latency_rank,
)
from repro.analysis.phases import (
    PhasePoint,
    bottleneck_phase,
    phase_pareto_front,
    phase_pareto_fronts,
    phase_points,
    phase_records,
    phase_speedups,
    saturated_phases,
)
from repro.analysis.design_space import (
    DesignSpaceSample,
    design_space_campaign,
    select_configurations,
    sweep_design_space,
    sweep_sparse_hamming_configurations,
    trade_off_curve,
)
from repro.analysis.search import (
    best_screened_per_family,
    compare_with_baseline,
    trajectory_records,
)

__all__ = [
    "best_screened_per_family",
    "compare_with_baseline",
    "trajectory_records",
    "ComplianceRow",
    "compliance_table",
    "format_compliance_table",
    "ParetoPoint",
    "pareto_front",
    "best_within_area_budget",
    "latency_rank",
    "PhasePoint",
    "bottleneck_phase",
    "phase_pareto_front",
    "phase_pareto_fronts",
    "phase_points",
    "phase_records",
    "phase_speedups",
    "saturated_phases",
    "DesignSpaceSample",
    "design_space_campaign",
    "select_configurations",
    "sweep_design_space",
    "sweep_sparse_hamming_configurations",
    "trade_off_curve",
]
