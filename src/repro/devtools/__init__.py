"""Developer tooling: differential-test scenario generation and replay.

Not part of the prediction toolchain — these helpers exist so that the
engine-differential harness (``tests/unit/test_engine_equivalence.py``), the
``tools/gen_scenarios.py`` script and the ``repro devtools replay-scenario``
CLI all draw their randomized scenarios from one shared, seeded generator.
A failing differential test can then print a one-line command that rebuilds
the exact failing scenario from ``(generator seed, index)`` alone.
"""

from repro.devtools.scenarios import (
    Scenario,
    diff_stats,
    generate_scenarios,
    get_scenario,
    run_scenario,
)

__all__ = [
    "Scenario",
    "diff_stats",
    "generate_scenarios",
    "get_scenario",
    "run_scenario",
]
