"""Seeded randomized scenarios for the engine-differential harness.

One generator, three consumers:

* ``tests/unit/test_engine_equivalence.py`` parametrizes its differential
  sweep over :func:`generate_scenarios` and embeds each scenario's
  :meth:`Scenario.repro_command` in the assertion message, so a CI failure
  carries its own one-line reproduction;
* ``tools/gen_scenarios.py`` lists/exports the scenario table for a given
  generator seed;
* ``repro devtools replay-scenario`` rebuilds one scenario from its
  ``(generator seed, index)`` coordinates and re-runs it under any set of
  engines, printing a field-level diff on divergence.

The draw sequence is a pure function of the generator seed: scenario
``index`` is the ``index``-th draw of one ``numpy`` Generator, so
``(seed, index)`` identifies a scenario forever — no scenario files, no
pickles.  The generator favours small grids and short phase windows to keep
sweeps fast while still crossing the kernel's distinct regimes (saturation,
escape-layer fallback, multi-cycle links, trace replay, single-VC routers).
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass
from typing import Any, Mapping

import numpy as np

from repro.core.sparse_hamming import SparseHammingGraph
from repro.simulator.simulation import SimulationConfig, Simulator
from repro.simulator.statistics import SimulationStats
from repro.simulator.sweep import replay_trace
from repro.topologies.base import Topology
from repro.topologies.flattened_butterfly import FlattenedButterflyTopology
from repro.topologies.mesh import MeshTopology
from repro.topologies.ring import RingTopology
from repro.topologies.torus import TorusTopology
from repro.utils.validation import ValidationError
from repro.workloads import make_workload_trace

#: The default generator seed; the differential suite's scenarios are the
#: first draws of this sequence, so ``--seed 2024 --index N`` replays the
#: N-th suite scenario exactly.
DEFAULT_GENERATOR_SEED = 2024

#: Topology families the generator draws from (keyed for scenario labels).
TOPOLOGIES = {
    "mesh": lambda rows, cols: MeshTopology(rows, cols),
    "torus": lambda rows, cols: TorusTopology(rows, cols),
    "ring": lambda rows, cols: RingTopology(rows, cols),
    "flattened_butterfly": lambda rows, cols: FlattenedButterflyTopology(rows, cols),
    # s_r/s_c = {2} is valid for every grid the generator draws (3..5 per axis).
    "sparse_hamming": lambda rows, cols: SparseHammingGraph(rows, cols, s_r={2}, s_c={2}),
}

TRAFFIC = ("uniform", "transpose", "tornado", "neighbor", "bit_complement")

#: Workload-generator parameters for the trace-replay scenarios (kept small:
#: a scenario is a harness probe, not a benchmark).
WORKLOADS: Mapping[str, dict[str, Any]] = {
    "dnn_inference": dict(layers=3, layer_window=40, fan_out=2),
    "mpi_collective": dict(collective="allreduce_ring", step_cycles=5),
    "stencil2d": dict(iterations=2, iteration_window=20),
    "onoff": dict(duration=120, burst_rate=0.4),
}


@dataclass(frozen=True)
class Scenario:
    """One randomized differential scenario, identified by ``(seed, index)``.

    ``config`` holds :class:`SimulationConfig` keyword arguments (injection
    rate, router parameters, phase windows, simulation seed); ``workload``
    names a trace generator for replay scenarios or is ``None`` for
    synthetic Bernoulli traffic.
    """

    index: int
    generator_seed: int
    topology: str
    rows: int
    cols: int
    traffic: str
    workload: str | None
    link_latency: int
    config: Mapping[str, Any]

    @property
    def label(self) -> str:
        """Short test id: index, topology family, and traffic or workload."""
        return f"{self.index:02d}-{self.topology}-{self.workload or self.traffic}"

    def repro_command(self) -> str:
        """The one-line CLI command that rebuilds and re-runs this scenario."""
        return (
            "repro devtools replay-scenario "
            f"--seed {self.generator_seed} --index {self.index}"
        )

    def build_topology(self) -> Topology:
        return TOPOLOGIES[self.topology](self.rows, self.cols)

    def build_trace(self):
        """The workload trace of a replay scenario (``None`` for synthetic)."""
        if self.workload is None:
            return None
        return make_workload_trace(
            self.workload,
            self.rows,
            self.cols,
            seed=self.config["seed"],
            **WORKLOADS[self.workload],
        )

    def simulation_config(self, engine: str) -> SimulationConfig:
        """The per-engine :class:`SimulationConfig` this scenario runs under.

        Replay scenarios ignore the injection/phase knobs but honour the
        randomized router configuration (VCs, buffers, pipeline), so the
        trace path is cross-checked beyond the default router too.
        """
        if self.workload is not None:
            return SimulationConfig(
                num_vcs=self.config["num_vcs"],
                buffer_depth_flits=self.config["buffer_depth_flits"],
                router_pipeline_cycles=self.config["router_pipeline_cycles"],
                drain_max_cycles=5000,
                seed=1,
                engine=engine,
            )
        return SimulationConfig(traffic=self.traffic, engine=engine, **self.config)


def generate_scenarios(
    count: int, seed: int = DEFAULT_GENERATOR_SEED
) -> list[Scenario]:
    """Deterministically draw the first ``count`` scenarios of ``seed``."""
    rng = np.random.default_rng(seed)
    scenarios = []
    topo_keys = sorted(TOPOLOGIES)
    workload_keys = sorted(WORKLOADS)
    for index in range(count):
        rows = int(rng.integers(3, 6))
        cols = int(rng.integers(3, 6))
        topo_key = topo_keys[int(rng.integers(len(topo_keys)))]
        num_vcs = int(rng.choice([1, 2, 4, 8]))
        config = dict(
            injection_rate=float(rng.choice([0.02, 0.08, 0.20, 0.45])),
            packet_size_flits=int(rng.choice([1, 2, 4])),
            num_vcs=num_vcs,
            buffer_depth_flits=int(rng.choice([1, 2, 4])),
            router_pipeline_cycles=int(rng.choice([1, 2, 3])),
            warmup_cycles=int(rng.choice([0, 50, 120])),
            measurement_cycles=int(rng.choice([80, 150, 250])),
            drain_max_cycles=int(rng.choice([400, 800])),
            seed=int(rng.integers(0, 10_000)),
        )
        traffic = TRAFFIC[int(rng.integers(len(TRAFFIC)))]
        if traffic == "transpose" and rows != cols:
            traffic = "uniform"
        workload = None
        if rng.random() < 0.35:
            workload = workload_keys[int(rng.integers(len(workload_keys)))]
        link_latency = int(rng.choice([0, 0, 2, 4]))  # 0 = single-cycle links
        scenarios.append(
            Scenario(
                index=index,
                generator_seed=seed,
                topology=topo_key,
                rows=rows,
                cols=cols,
                traffic=traffic,
                workload=workload,
                link_latency=link_latency,
                config=config,
            )
        )
    return scenarios


def get_scenario(index: int, seed: int = DEFAULT_GENERATOR_SEED) -> Scenario:
    """Rebuild scenario ``index`` of generator ``seed`` (0-based)."""
    if index < 0:
        raise ValidationError(f"scenario index must be >= 0 (got {index})")
    return generate_scenarios(index + 1, seed=seed)[index]


def run_scenario(scenario: Scenario, engine: str) -> SimulationStats:
    """Run one scenario under ``engine`` and return its statistics."""
    topology = scenario.build_topology()
    link_latencies = (
        {link: scenario.link_latency for link in topology.links}
        if scenario.link_latency
        else None
    )
    config = scenario.simulation_config(engine)
    trace = scenario.build_trace()
    if trace is not None:
        return replay_trace(
            topology, trace, config=config, link_latencies=link_latencies
        )
    return Simulator(topology, config, link_latencies=link_latencies).run()


def diff_stats(
    baseline_name: str,
    baseline: SimulationStats,
    other_name: str,
    other: SimulationStats,
) -> list[str]:
    """Field-level differences between two statistics objects.

    Returns one ``"field: <baseline_name>=x <other_name>=y"`` line per
    differing field (empty list = identical), so divergence reports show
    the few fields that differ instead of two full ``SimulationStats``
    dumps.
    """
    a = dataclasses.asdict(baseline)
    b = dataclasses.asdict(other)
    lines = []
    for field in sorted(set(a) | set(b)):
        if a.get(field) != b.get(field):
            lines.append(
                f"{field}: {baseline_name}={a.get(field)!r} "
                f"{other_name}={b.get(field)!r}"
            )
    return lines


__all__ = [
    "DEFAULT_GENERATOR_SEED",
    "Scenario",
    "TOPOLOGIES",
    "TRAFFIC",
    "WORKLOADS",
    "diff_stats",
    "generate_scenarios",
    "get_scenario",
    "run_scenario",
]
