"""Load sweeps: zero-load latency and saturation throughput.

The paper's performance metrics (Figure 6) are the *zero-load latency* and the
*saturation throughput* obtained from cycle-accurate simulation:

* zero-load latency — average packet latency at a very low injection rate,
  where no contention occurs;
* saturation throughput — the largest offered load (as a fraction of the
  injection capacity of one flit per tile per cycle) that the network can
  still accept; beyond it the accepted throughput flattens and the latency
  diverges.

``find_saturation_throughput`` performs a coarse geometric sweep followed by a
bisection refinement; a load point counts as *saturated* when the average
latency exceeds ``latency_blowup`` times the zero-load latency, when the
accepted throughput falls short of the offered load, or when the network fails
to drain the measured packets.

Every sweep builds the routing tables and the :class:`Network` **once** and
shares them across all simulated load points — only the injection rate varies
between points, and neither structure depends on it.  Callers that sweep the
same topology repeatedly (e.g. the prediction toolchain) can pass prebuilt
``routing`` and/or ``network`` objects to skip construction entirely.

Batched execution
-----------------
When ``config.engine == "vec"`` the sweeps exploit the vec engine's batch
axis (:class:`~repro.simulator.batch.BatchSimulator`): :func:`run_load_sweep`
fuses all rates into one kernel, and :func:`find_saturation_throughput` fuses
the coarse bracketing stage (the bisection stays sequential — each midpoint
depends on the previous verdict).  Batching never changes results: each lane
is bit-identical to its solo run, and the coarse stage trims its batched
results to exactly the points the sequential loop would have visited, so the
returned ``points`` list — and with it every downstream consumer, including
the experiment memoization cache shared across engines — is unchanged.
:func:`run_batch` exposes the same fusion for arbitrary config batches
(seed replications, mixed trace/synthetic lanes).
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import TYPE_CHECKING, Sequence

from repro.simulator.batch import BatchSimulator
from repro.simulator.network import Network, build_network
from repro.simulator.routing_tables import RoutingTables, build_routing_tables
from repro.simulator.simulation import SimulationConfig, Simulator
from repro.simulator.statistics import SimulationStats
from repro.topologies.base import Link, Topology
from repro.utils.validation import ValidationError, check_in_range

if TYPE_CHECKING:  # imported for type hints only; no runtime dependency
    from repro.workloads.trace import WorkloadTrace


@dataclass
class LoadSweepResult:
    """Result of a full load sweep on one topology.

    Attributes
    ----------
    zero_load_latency:
        Average packet latency (cycles) at the probe load.
    saturation_throughput:
        Saturation injection rate as a fraction of capacity (0..1).
    points:
        The individual ``(injection_rate, SimulationStats)`` samples, in the
        order they were simulated.
    """

    zero_load_latency: float
    saturation_throughput: float
    points: list[tuple[float, SimulationStats]]


def _shared_network(
    topology: Topology,
    config: SimulationConfig,
    link_latencies: dict[Link, int] | None,
    routing: RoutingTables | None,
    network: Network | None,
) -> Network:
    """The network reused by every load point of one sweep.

    A prebuilt ``network`` wins outright (it already carries its routing
    tables); otherwise the tables are built here — only when actually needed,
    so the prebuilt-network fast path never pays the all-pairs BFS.
    """
    if network is not None:
        return network
    if routing is None:
        routing = build_routing_tables(topology)
    return build_network(
        topology,
        config=config.network_config(),
        link_latencies=link_latencies,
        routing=routing,
    )


def _simulate(
    topology: Topology,
    config: SimulationConfig,
    network: Network,
) -> SimulationStats:
    simulator = Simulator(topology, config, network=network)
    return simulator.run()


def run_batch(
    topology: Topology,
    configs: "Sequence[SimulationConfig]",
    link_latencies: dict[Link, int] | None = None,
    routing: RoutingTables | None = None,
    network: Network | None = None,
    traces: "Sequence[WorkloadTrace | None] | None" = None,
) -> list[SimulationStats]:
    """Simulate many configurations of one topology in a single fused kernel.

    A thin functional wrapper over
    :class:`~repro.simulator.batch.BatchSimulator`: all lanes share one
    compiled network (so the router-level parameters must match across
    ``configs``) and run on the ``vec`` engine's batch axis.  The returned
    list is parallel to ``configs`` and each entry is bit-identical to the
    corresponding solo ``Simulator(...).run()``.
    """
    batch = BatchSimulator(
        topology,
        configs,
        link_latencies=link_latencies,
        routing=routing,
        network=network,
        traces=traces,
    )
    return batch.run()


def measure_zero_load_latency(
    topology: Topology,
    config: SimulationConfig | None = None,
    link_latencies: dict[Link, int] | None = None,
    routing: RoutingTables | None = None,
    probe_rate: float = 0.01,
    network: Network | None = None,
) -> SimulationStats:
    """Measure the latency at a probe load low enough to avoid contention."""
    check_in_range("probe_rate", probe_rate, 0.0, 1.0)
    base = config or SimulationConfig()
    network = _shared_network(topology, base, link_latencies, routing, network)
    probe_config = replace(base, injection_rate=probe_rate)
    return _simulate(topology, probe_config, network)


def _is_saturated(
    stats: SimulationStats, zero_load_latency: float, latency_blowup: float
) -> bool:
    if not stats.drained:
        return True
    if stats.packets_measured == 0:
        return False
    # The accepted-load criterion needs an absolute slack term so that
    # small-sample noise at low loads does not get mistaken for saturation.
    if stats.accepted_load < 0.92 * stats.offered_load - 0.005:
        return True
    return stats.average_packet_latency > latency_blowup * max(zero_load_latency, 1.0)


def saturation_plan(
    base: SimulationConfig,
    latency_blowup: float = 3.0,
    coarse_steps: int = 6,
    refine_steps: int = 3,
    max_rate: float = 1.0,
    batch_coarse: bool = False,
):
    """The saturation search as a resumable generator of simulation rounds.

    Yields lists of :class:`SimulationConfig` (one round of load points);
    the driver sends back the parallel list of :class:`SimulationStats`
    (``generator.send``), and the generator finishes with the
    :class:`LoadSweepResult` as its ``StopIteration`` value.  This decouples
    the search's control flow — probe, coarse bracket, bisection — from
    *how* the points are executed: :func:`find_saturation_throughput` runs
    the rounds directly, while the gang scheduler
    (:mod:`repro.experiments.scheduler`) interleaves the rounds of many
    specs through one lane-recycled kernel.  The emitted rounds and the
    resulting ``points`` list are identical either way.

    With ``batch_coarse`` the whole coarse stage is emitted as one round
    (the vec engine fuses it into a single kernel); results past the first
    saturated rate are trimmed exactly as the sequential walk would have
    stopped, so downstream consumers see the same points.
    """
    if coarse_steps < 2:
        raise ValidationError("coarse_steps must be >= 2")
    return _saturation_plan(
        base, latency_blowup, coarse_steps, refine_steps, max_rate, batch_coarse
    )


def _saturation_plan(
    base: SimulationConfig,
    latency_blowup: float,
    coarse_steps: int,
    refine_steps: int,
    max_rate: float,
    batch_coarse: bool,
):
    points: list[tuple[float, SimulationStats]] = []
    probe_rate = min(0.01, max_rate)
    (zero_load_stats,) = yield [replace(base, injection_rate=probe_rate)]
    zero_load_latency = zero_load_stats.average_packet_latency
    points.append((probe_rate, zero_load_stats))

    if _is_saturated(zero_load_stats, zero_load_latency, latency_blowup):
        # The probe load itself is saturated: the bracket degenerates to the
        # probe rate immediately.  Returning here (instead of sweeping on with
        # ``lo`` seeded to the probe rate) keeps noisy non-saturated midpoints
        # from bisecting ``lo`` upwards past any load the network was actually
        # shown to sustain.
        return LoadSweepResult(
            zero_load_latency=zero_load_latency,
            saturation_throughput=probe_rate,
            points=points,
        )

    # Coarse sweep: geometric spacing between the probe load and max_rate.
    coarse_rates = [
        min(max_rate, 0.02 * (max_rate / 0.02) ** (step / coarse_steps))
        for step in range(1, coarse_steps + 1)
    ]
    lo, hi = None, None
    last_good = probe_rate
    if batch_coarse and len(coarse_rates) > 1:
        # Batched fast path: emit the whole coarse stage as one round.  Each
        # lane is bit-identical to its solo run, and the walk below still
        # stops at the first saturated rate, so the ``points`` list (and
        # everything derived from it) matches the sequential loop exactly —
        # the lanes past the break are simply discarded.
        coarse_stats = yield [
            replace(base, injection_rate=rate) for rate in coarse_rates
        ]
        for rate, stats in zip(coarse_rates, coarse_stats):
            points.append((rate, stats))
            if _is_saturated(stats, zero_load_latency, latency_blowup):
                lo, hi = last_good, rate
                break
            last_good = rate
    else:
        for rate in coarse_rates:
            (stats,) = yield [replace(base, injection_rate=rate)]
            points.append((rate, stats))
            if _is_saturated(stats, zero_load_latency, latency_blowup):
                lo, hi = last_good, rate
                break
            last_good = rate
    if lo is None:
        # Never saturated up to max_rate: the network sustains full injection.
        return LoadSweepResult(
            zero_load_latency=zero_load_latency,
            saturation_throughput=last_good,
            points=points,
        )

    # Bisection refinement of the bracket [lo, hi].
    for _ in range(refine_steps):
        mid = (lo + hi) / 2.0
        (stats,) = yield [replace(base, injection_rate=mid)]
        points.append((mid, stats))
        if _is_saturated(stats, zero_load_latency, latency_blowup):
            hi = mid
        else:
            lo = mid
    return LoadSweepResult(
        zero_load_latency=zero_load_latency,
        saturation_throughput=lo,
        points=points,
    )


def find_saturation_throughput(
    topology: Topology,
    config: SimulationConfig | None = None,
    link_latencies: dict[Link, int] | None = None,
    routing: RoutingTables | None = None,
    latency_blowup: float = 3.0,
    coarse_steps: int = 6,
    refine_steps: int = 3,
    max_rate: float = 1.0,
    network: Network | None = None,
) -> LoadSweepResult:
    """Estimate zero-load latency and saturation throughput by simulation.

    The sweep first probes a geometric sequence of injection rates to bracket
    the saturation point, then bisects the bracket ``refine_steps`` times.
    When the probe load itself is already saturated, the bracket degenerates
    to the probe rate and the reported saturation throughput is the probe
    rate (the network sustains no less than what it was shown to carry).

    The search logic lives in :func:`saturation_plan`; this function drives
    the plan's rounds — fused through :func:`run_batch` when the configured
    engine is ``vec`` and a round holds more than one point, sequentially
    otherwise.
    """
    base = config or SimulationConfig()
    plan = saturation_plan(
        base,
        latency_blowup=latency_blowup,
        coarse_steps=coarse_steps,
        refine_steps=refine_steps,
        max_rate=max_rate,
        batch_coarse=base.engine == "vec",
    )
    network = _shared_network(topology, base, link_latencies, routing, network)
    response: list[SimulationStats] | None = None
    while True:
        try:
            batch = plan.send(response)
        except StopIteration as stop:
            return stop.value
        if base.engine == "vec" and len(batch) > 1:
            response = run_batch(topology, batch, network=network)
        else:
            response = [
                _simulate(topology, batch_config, network)
                for batch_config in batch
            ]


def replay_trace(
    topology: Topology,
    trace: "WorkloadTrace",
    config: SimulationConfig | None = None,
    link_latencies: dict[Link, int] | None = None,
    routing: RoutingTables | None = None,
    network: Network | None = None,
) -> SimulationStats:
    """Replay a workload trace through the cycle-accurate simulator.

    The trace-driven counterpart of :func:`run_load_sweep`: the network (and
    with it the physical model's per-link latencies, when given) is shared
    with any prebuilt structures the caller supplies, and the returned
    :class:`~repro.simulator.statistics.SimulationStats` carries per-phase
    latency/throughput in ``stats.phases``.  Replay is deterministic — the
    same trace on the same network yields bit-identical statistics.

    Parameters
    ----------
    topology:
        The topology to replay on; its tile count must match
        ``trace.num_tiles``.
    trace:
        The :class:`~repro.workloads.trace.WorkloadTrace` to replay.
    config:
        Router/flow-control configuration; the Bernoulli-specific fields
        (``injection_rate``, ``traffic``, ``warmup_cycles``,
        ``measurement_cycles``) are ignored in trace mode, while
        ``drain_max_cycles`` still bounds the drain.
    link_latencies, routing, network:
        Prebuilt structures to share, exactly as in :func:`run_load_sweep`.

    Raises
    ------
    ValidationError
        If the trace addresses a different number of tiles than the topology
        has.  Checked up front, before any routing tables or network are
        built, so a mismatched replay fails fast instead of after the
        all-pairs BFS.
    """
    if trace.num_tiles != topology.num_tiles:
        raise ValidationError(
            f"trace {trace.name!r} addresses {trace.num_tiles} tiles but "
            f"topology {topology.name!r} has {topology.num_tiles}; generate "
            f"the trace for this grid or replay it on a matching topology"
        )
    base = config or SimulationConfig()
    network = _shared_network(topology, base, link_latencies, routing, network)
    simulator = Simulator(topology, base, network=network, trace=trace)
    return simulator.run()


def run_load_sweep(
    topology: Topology,
    rates: list[float],
    config: SimulationConfig | None = None,
    link_latencies: dict[Link, int] | None = None,
    routing: RoutingTables | None = None,
    network: Network | None = None,
) -> list[tuple[float, SimulationStats]]:
    """Simulate a fixed list of injection rates (latency/throughput curves).

    With ``config.engine == "vec"`` all rates run as one fused batch (same
    per-point statistics, lower wall-clock); otherwise the points run
    sequentially through the configured engine.
    """
    base = config or SimulationConfig()
    network = _shared_network(topology, base, link_latencies, routing, network)
    if base.engine == "vec" and len(rates) > 1:
        batch_stats = run_batch(
            topology,
            [replace(base, injection_rate=rate) for rate in rates],
            network=network,
        )
        return list(zip(rates, batch_stats))
    results = []
    for rate in rates:
        stats = _simulate(topology, replace(base, injection_rate=rate), network)
        results.append((rate, stats))
    return results
