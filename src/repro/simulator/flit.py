"""Packets and flits.

A *packet* is the unit of end-to-end communication (e.g. an AXI burst); it is
segmented into *flits* (flow-control units), the atomic amount of data
transported across the network (paper, footnote 3).  The first flit of a
packet is the *head* (it carries the routing information and allocates the
virtual channel), the last one is the *tail* (it releases the VC).
"""

from __future__ import annotations

from repro.utils.validation import ValidationError, check_type


class Packet:
    """One network packet.

    Attributes
    ----------
    packet_id:
        Unique, monotonically increasing identifier.
    source, destination:
        Tile indices of the producer and the consumer.
    size_flits:
        Number of flits the packet is segmented into.
    creation_cycle:
        Cycle in which the traffic generator created the packet (start of
        queueing at the source).
    injection_cycle:
        Cycle in which the head flit entered the network (set by the
        simulator), or ``None`` while still queued.
    arrival_cycle:
        Cycle in which the tail flit was ejected at the destination, or
        ``None`` while in flight.
    is_measured:
        ``True`` if the packet was created during the measurement phase and
        therefore contributes to the reported statistics.
    """

    __slots__ = (
        "packet_id",
        "source",
        "destination",
        "size_flits",
        "creation_cycle",
        "injection_cycle",
        "arrival_cycle",
        "is_measured",
        "used_escape",
    )

    def __init__(
        self,
        packet_id: int,
        source: int,
        destination: int,
        size_flits: int,
        creation_cycle: int,
        is_measured: bool = False,
    ) -> None:
        check_type("size_flits", size_flits, int)
        if size_flits < 1:
            raise ValidationError("a packet needs at least one flit")
        if source == destination:
            raise ValidationError("source and destination must differ")
        self.packet_id = packet_id
        self.source = source
        self.destination = destination
        self.size_flits = size_flits
        self.creation_cycle = creation_cycle
        self.injection_cycle: int | None = None
        self.arrival_cycle: int | None = None
        self.is_measured = is_measured
        #: ``True`` once any flit of the packet fell back to the escape layer.
        self.used_escape = False

    @property
    def total_latency(self) -> int | None:
        """Latency from creation to arrival of the tail flit (includes queueing)."""
        if self.arrival_cycle is None:
            return None
        return self.arrival_cycle - self.creation_cycle

    @property
    def network_latency(self) -> int | None:
        """Latency from injection of the head flit to arrival of the tail flit."""
        if self.arrival_cycle is None or self.injection_cycle is None:
            return None
        return self.arrival_cycle - self.injection_cycle

    def __repr__(self) -> str:
        return (
            f"Packet(id={self.packet_id}, {self.source}->{self.destination}, "
            f"flits={self.size_flits})"
        )


class Flit:
    """One flow-control unit of a packet.

    Flits are deliberately lightweight (``__slots__`` only): the simulator
    creates one object per flit and moves it through buffers and links.
    """

    __slots__ = (
        "packet",
        "sequence",
        "destination",
        "is_head",
        "is_tail",
        "vc",
        "escape",
        "hops",
    )

    def __init__(self, packet: Packet, sequence: int) -> None:
        self.packet = packet
        self.sequence = sequence
        #: Destination tile, copied from the parent packet so the router's
        #: allocation loop reads it with one attribute load instead of two.
        self.destination = packet.destination
        self.is_head = sequence == 0
        self.is_tail = sequence == packet.size_flits - 1
        #: Virtual channel currently occupied (set while traversing the network).
        self.vc: int | None = None
        #: ``True`` once the packet has switched to the escape layer (VC 0);
        #: it must then follow escape routing for the rest of its journey.
        self.escape = False
        #: Number of router-to-router hops taken so far (statistics).
        self.hops = 0

    def __repr__(self) -> str:
        kind = "H" if self.is_head else ("T" if self.is_tail else "B")
        return f"Flit(pkt={self.packet.packet_id}, seq={self.sequence}, {kind})"


def packet_to_flits(packet: Packet) -> list[Flit]:
    """Segment ``packet`` into its flits, in transmission order."""
    return [Flit(packet, sequence) for sequence in range(packet.size_flits)]
