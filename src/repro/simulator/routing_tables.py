"""Routing tables: minimal routing plus a deadlock-free escape layer.

The paper's evaluation uses "a routing algorithm that minimizes the number of
router-to-router hops" (Figure 6 caption).  We implement this as table-based
minimal routing: for every (router, destination) pair the table stores the
next hop of a hop-minimal path.  Ties between hop-minimal next hops are broken
towards the *physically* shortest continuation (design principle ❹: among
hop-minimal paths, prefer the one with minimal physical length), and then by
neighbour index for determinism.

Deadlock freedom is provided with a Duato-style two-layer scheme:

* the *adaptive layer* (VCs ``1 .. V-1``) uses the minimal-routing table and
  may deadlock in isolation (e.g. on tori, whose wrap-around links create
  cyclic channel dependencies);
* the *escape layer* (VC ``0``) routes strictly along a BFS spanning tree
  rooted at tile 0: a packet first travels up the tree (towards the root)
  until it reaches the lowest common ancestor of source and destination, then
  down the tree to the destination.  Tree routing is a special case of
  up*/down* routing, its channel dependency graph is acyclic, and the
  next hop depends only on (current node, destination), so the escape layer
  is deadlock-free and table-implementable.

By Duato's theorem the combination is deadlock-free as long as a blocked
packet can always fall back to the escape layer, which the router guarantees:
once a packet enters the escape layer it stays there until delivery.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass

from repro.topologies.base import Topology
from repro.utils.validation import ValidationError


@dataclass
class RoutingTables:
    """Next-hop tables of one topology.

    Attributes
    ----------
    minimal:
        ``minimal[node][destination] -> next hop`` along a hop-minimal path.
    escape:
        ``escape[node][destination] -> next hop`` along the spanning-tree
        (escape) path.
    hop_distance:
        ``hop_distance[node][destination]`` -> minimal hop count.
    tree_parent:
        Parent of every node in the escape spanning tree (root's parent is -1).
    """

    minimal: list[dict[int, int]]
    escape: list[dict[int, int]]
    hop_distance: list[dict[int, int]]
    tree_parent: list[int]

    def minimal_next_hop(self, node: int, destination: int) -> int:
        """Next hop of the minimal route from ``node`` towards ``destination``."""
        return self.minimal[node][destination]

    def escape_next_hop(self, node: int, destination: int) -> int:
        """Next hop of the escape (spanning-tree) route from ``node``."""
        return self.escape[node][destination]

    def path(self, source: int, destination: int, escape: bool = False) -> list[int]:
        """Full node path from ``source`` to ``destination`` (for tests/analysis)."""
        table = self.escape if escape else self.minimal
        path = [source]
        current = source
        limit = 2 * len(self.minimal) + 2
        while current != destination:
            current = table[current][destination]
            path.append(current)
            if len(path) > limit:
                raise ValidationError(
                    f"routing table loop detected from {source} to {destination}"
                )
        return path

    def average_minimal_hops(self) -> float:
        """Mean hop count over all ordered source/destination pairs."""
        num = len(self.minimal)
        total = sum(
            self.hop_distance[src][dst]
            for src in range(num)
            for dst in range(num)
            if src != dst
        )
        return total / (num * (num - 1))


def _minimal_tables(topology: Topology) -> tuple[list[dict[int, int]], list[dict[int, int]]]:
    """Hop-minimal next-hop tables with physical-length tie-breaking."""
    num = topology.num_tiles
    neighbors = [topology.neighbors(node) for node in range(num)]
    coords = [topology.coord(node) for node in range(num)]

    hop_distance: list[dict[int, int]] = [dict() for _ in range(num)]
    minimal: list[dict[int, int]] = [dict() for _ in range(num)]

    for destination in range(num):
        # BFS from the destination gives hop distances to that destination.
        dist = {destination: 0}
        queue = deque([destination])
        while queue:
            node = queue.popleft()
            for neighbor in neighbors[node]:
                if neighbor not in dist:
                    dist[neighbor] = dist[node] + 1
                    queue.append(neighbor)
        if len(dist) != num:
            raise ValidationError("topology is not connected; cannot build routing tables")
        for node, hops in dist.items():
            hop_distance[node][destination] = hops

        # Among hop-minimal next hops, prefer the physically shortest overall
        # continuation (dynamic program over increasing hop distance).
        order = sorted(range(num), key=lambda n: dist[n])
        best_phys: dict[int, float] = {destination: 0.0}
        for node in order:
            if node == destination:
                continue
            level = dist[node]
            best_choice: tuple[float, int] | None = None
            for neighbor in neighbors[node]:
                if dist[neighbor] != level - 1:
                    continue
                length = abs(coords[node].row - coords[neighbor].row) + abs(
                    coords[node].col - coords[neighbor].col
                )
                candidate = (best_phys[neighbor] + length, neighbor)
                if best_choice is None or candidate < best_choice:
                    best_choice = candidate
            assert best_choice is not None  # connected graph: some neighbour is closer
            best_phys[node] = best_choice[0]
            minimal[node][destination] = best_choice[1]
    return minimal, hop_distance


def _spanning_tree(topology: Topology, root: int = 0) -> list[int]:
    """BFS spanning tree: ``parent[node]`` (-1 for the root)."""
    parent = [-2] * topology.num_tiles
    parent[root] = -1
    queue = deque([root])
    while queue:
        node = queue.popleft()
        for neighbor in topology.neighbors(node):
            if parent[neighbor] == -2:
                parent[neighbor] = node
                queue.append(neighbor)
    if any(p == -2 for p in parent):
        raise ValidationError("topology is not connected; cannot build escape tree")
    return parent


def _escape_tables(topology: Topology, parent: list[int]) -> list[dict[int, int]]:
    """Spanning-tree next-hop tables (up to the common ancestor, then down).

    The default next hop towards any destination is the node's tree parent
    ("up"); for every node that lies on the tree path from the root to the
    destination the next hop is overridden with the child leading towards the
    destination ("down").
    """
    num = topology.num_tiles
    escape: list[dict[int, int]] = [dict() for _ in range(num)]
    for destination in range(num):
        # Ancestor chain of the destination, starting at the destination.
        chain = [destination]
        while parent[chain[-1]] != -1:
            chain.append(parent[chain[-1]])
        on_chain = {node: index for index, node in enumerate(chain)}
        for node in range(num):
            if node == destination:
                continue
            if node in on_chain:
                # Go down the tree: the next hop is the previous chain element.
                escape[node][destination] = chain[on_chain[node] - 1]
            else:
                escape[node][destination] = parent[node]
    return escape


def build_routing_tables(topology: Topology) -> RoutingTables:
    """Build minimal and escape routing tables for ``topology``."""
    topology.validate_connected()
    minimal, hop_distance = _minimal_tables(topology)
    parent = _spanning_tree(topology, root=0)
    escape = _escape_tables(topology, parent)
    return RoutingTables(
        minimal=minimal,
        escape=escape,
        hop_distance=hop_distance,
        tree_parent=parent,
    )
