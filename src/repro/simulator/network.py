"""Network construction: routers, directed channels, and their configuration.

A :class:`Network` is built from a :class:`~repro.topologies.base.Topology`,
per-link latency estimates (produced by the physical model), routing tables
and a :class:`NetworkConfig`.  Every undirected topology link becomes two
directed *channels*; each channel has a latency in cycles (pipeline registers
inserted on long wires, Section II-A) and carries both flits (forward) and
credits (backward, with the same latency).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.simulator.routing_tables import RoutingTables, build_routing_tables
from repro.topologies.base import Link, Topology
from repro.utils.validation import ValidationError, check_type


@dataclass(frozen=True)
class NetworkConfig:
    """Router micro-architecture and flow-control configuration.

    Attributes
    ----------
    num_vcs:
        Virtual channels per input port.  VC 0 is the escape VC; the paper's
        evaluation uses 8 VCs in total.
    buffer_depth_flits:
        Buffer depth *per VC* in flits.  The paper's 32-flit input buffers
        with 8 VCs correspond to 4 flits per VC.
    router_pipeline_cycles:
        Cycles a flit spends in the router pipeline before it can be forwarded
        (route computation + VC allocation + switch allocation + traversal).
    packet_size_flits:
        Number of flits per packet.
    """

    num_vcs: int = 8
    buffer_depth_flits: int = 4
    router_pipeline_cycles: int = 2
    packet_size_flits: int = 4

    def __post_init__(self) -> None:
        check_type("num_vcs", self.num_vcs, int)
        check_type("buffer_depth_flits", self.buffer_depth_flits, int)
        check_type("router_pipeline_cycles", self.router_pipeline_cycles, int)
        check_type("packet_size_flits", self.packet_size_flits, int)
        if self.num_vcs < 1:
            raise ValidationError("num_vcs must be >= 1")
        if self.buffer_depth_flits < 1:
            raise ValidationError("buffer_depth_flits must be >= 1")
        if self.router_pipeline_cycles < 1:
            raise ValidationError("router_pipeline_cycles must be >= 1")
        if self.packet_size_flits < 1:
            raise ValidationError("packet_size_flits must be >= 1")

    @property
    def adaptive_vcs(self) -> tuple[int, ...]:
        """The VC indices of the adaptive (minimal-routing) layer."""
        if self.num_vcs == 1:
            return ()
        return tuple(range(1, self.num_vcs))

    @property
    def escape_vc(self) -> int:
        """The VC index of the escape layer."""
        return 0


@dataclass(frozen=True)
class Channel:
    """One directed router-to-router channel."""

    channel_id: int
    source: int
    destination: int
    latency_cycles: int


@dataclass
class Network:
    """Static structure of the simulated network.

    A ``Network`` is immutable once built and carries no per-run state, so
    one instance can (and, for performance, should) be shared across many
    :class:`~repro.simulator.simulation.Simulator` runs — a load sweep builds
    the network once and reuses it for every injection rate.

    Attributes
    ----------
    topology:
        The underlying topology.
    config:
        Router/flow-control configuration.
    routing:
        Minimal + escape routing tables.
    channels:
        All directed channels, indexed by channel id.
    channel_ids:
        Lookup ``(source, destination) -> channel id``.
    outputs:
        Per node: mapping ``neighbour -> channel id`` of its outgoing channels.
    inputs:
        Per node: list of channel ids of its incoming channels.
    """

    topology: Topology
    config: NetworkConfig
    routing: RoutingTables
    channels: list[Channel] = field(default_factory=list)
    channel_ids: dict[tuple[int, int], int] = field(default_factory=dict)
    outputs: list[dict[int, int]] = field(default_factory=list)
    inputs: list[list[int]] = field(default_factory=list)
    # Lazily built hot-path lookup tables (see compiled_routes); not part of
    # the network's value identity.
    _compiled_routes: tuple[list[list[int]], list[list[int]]] | None = field(
        default=None, init=False, repr=False, compare=False
    )

    @property
    def num_nodes(self) -> int:
        """Number of routers (= tiles)."""
        return self.topology.num_tiles

    @property
    def max_latency_cycles(self) -> int:
        """Largest channel latency (sizes the simulator's event wheel)."""
        return max((channel.latency_cycles for channel in self.channels), default=1)

    def channel(self, source: int, destination: int) -> Channel:
        """The directed channel from ``source`` to ``destination``."""
        key = (source, destination)
        if key not in self.channel_ids:
            raise ValidationError(f"no channel from {source} to {destination}")
        return self.channels[self.channel_ids[key]]

    def latency(self, source: int, destination: int) -> int:
        """Latency in cycles of the channel ``source -> destination``."""
        return self.channel(source, destination).latency_cycles

    def compiled_routes(self) -> tuple[list[list[int]], list[list[int]]]:
        """Routing tables flattened into channel-id arrays for the hot path.

        Returns ``(minimal_channel, escape_channel)`` where
        ``minimal_channel[node][destination]`` is the *outgoing channel id*
        a head flit at ``node`` takes towards ``destination`` on the adaptive
        (hop-minimal) layer, and ``escape_channel`` likewise for the escape
        (spanning-tree) layer.  Entries for ``node == destination`` are ``-1``
        (the flit ejects instead of routing).  Collapsing the two-step
        ``routing table -> neighbour -> channel id`` lookup into one list
        index removes two dict probes per head flit per hop from the router's
        allocation loop.  Built once per network and cached.
        """
        if self._compiled_routes is None:
            num = self.num_nodes
            minimal_table, escape_table = self.routing.minimal, self.routing.escape
            minimal = [
                [
                    self.outputs[node][minimal_table[node][dst]] if dst != node else -1
                    for dst in range(num)
                ]
                for node in range(num)
            ]
            escape = [
                [
                    self.outputs[node][escape_table[node][dst]] if dst != node else -1
                    for dst in range(num)
                ]
                for node in range(num)
            ]
            self._compiled_routes = (minimal, escape)
        return self._compiled_routes


def build_network(
    topology: Topology,
    config: NetworkConfig | None = None,
    link_latencies: dict[Link, int] | None = None,
    routing: RoutingTables | None = None,
) -> Network:
    """Construct a :class:`Network` from a topology.

    Parameters
    ----------
    topology:
        The NoC topology.
    config:
        Router configuration; defaults to the paper's evaluation setup.
    link_latencies:
        Latency in cycles per undirected link (from the physical model).
        Links not present default to one cycle.
    routing:
        Pre-built routing tables (rebuilding them is the most expensive part
        of network construction, so callers that sweep injection rates should
        share one instance).
    """
    if config is None:
        config = NetworkConfig()
    if routing is None:
        routing = build_routing_tables(topology)
    latencies = link_latencies or {}

    network = Network(topology=topology, config=config, routing=routing)
    network.outputs = [dict() for _ in range(topology.num_tiles)]
    network.inputs = [list() for _ in range(topology.num_tiles)]

    for link in topology.links:
        latency = max(1, int(latencies.get(link, 1)))
        for source, destination in ((link.src, link.dst), (link.dst, link.src)):
            channel_id = len(network.channels)
            network.channels.append(
                Channel(
                    channel_id=channel_id,
                    source=source,
                    destination=destination,
                    latency_cycles=latency,
                )
            )
            network.channel_ids[(source, destination)] = channel_id
            network.outputs[source][destination] = channel_id
            network.inputs[destination].append(channel_id)
    return network
