"""Input-queued virtual-channel router model.

Each router has one input port per incoming channel plus one injection port,
and one output port per outgoing channel plus one ejection port.  Every input
port has ``num_vcs`` virtual channels, each with a private flit buffer of
``buffer_depth_flits`` entries, protected by credit-based flow control.

Per cycle the router performs (in this order):

1. *route computation + VC allocation* — head flits at the front of an input
   VC that do not yet hold an output VC compute their output port (minimal
   table, or escape table if the packet is on the escape layer) and try to
   acquire a free output VC: first any free adaptive VC (1..V-1) of the
   minimal-route output, otherwise the escape VC 0 of the escape-route output
   (switching the packet to the escape layer permanently);
2. *switch allocation + traversal* — for every output port one input VC with a
   ready flit, a held output VC and a downstream credit is selected
   round-robin (at most one flit leaves per input port per cycle) and its flit
   is forwarded onto the channel; tail flits release the output VC.

The router pipeline latency is modelled by making every arriving flit eligible
for forwarding only ``router_pipeline_cycles`` after its arrival.

Hot-path structure
------------------
:meth:`Router.step` fuses both phases into a single pass over a pre-flattened
``(input port, VC)`` list: each ready front flit is allocated (if it is an
unallocated head) and immediately *bucketed* under its output port; switch
allocation then draws each port's round-robin winner from its bucket.  This
is behaviour-identical to the textbook two-phase formulation (allocation
never depends on other VCs' switch decisions within a cycle, and credits and
buffers only change for switch winners, which the one-flit-per-input-port
rule excludes from later ports anyway) but visits every VC once per cycle
instead of once per output port.  Routing lookups use the network's
:meth:`~repro.simulator.network.Network.compiled_routes` channel-id arrays,
and the scheduler only calls ``step`` on routers that hold buffered flits
(see :class:`~repro.simulator.simulation.Simulator`), which ``Router`` tracks
in :attr:`buffered_count`.
"""

from __future__ import annotations

from collections import deque
from typing import Callable

from repro.simulator.flit import Flit
from repro.simulator.network import Network

#: Pseudo input-port key of the local injection port.
INJECT_PORT = -1
#: Pseudo output-port key of the local ejection port.
EJECT_PORT = -2


class InputVC:
    """State of one virtual channel of one input port."""

    __slots__ = ("buffer", "out_channel", "out_vc")

    def __init__(self) -> None:
        #: FIFO of ``(flit, ready_cycle)`` tuples.
        self.buffer: deque[tuple[Flit, int]] = deque()
        #: Output channel currently allocated to the packet in this VC.
        self.out_channel: int | None = None
        #: Output VC currently allocated to the packet in this VC.
        self.out_vc: int | None = None

    @property
    def busy(self) -> bool:
        """``True`` if the VC holds flits or an allocation."""
        return bool(self.buffer) or self.out_channel is not None


class Router:
    """One input-queued VC router.

    The router communicates with the rest of the simulator through callbacks:
    ``send_flit(channel_id, vc, flit)`` schedules a flit on a channel,
    ``send_credit(channel_id, vc)`` returns a credit upstream and
    ``eject(flit, cycle)`` delivers a flit to the local endpoint.
    """

    def __init__(self, node: int, network: Network) -> None:
        self.node = node
        self.network = network
        self.config = network.config
        num_vcs = self.config.num_vcs

        #: input ports: incoming channel ids plus the injection port.
        self.input_keys: list[int] = list(network.inputs[node]) + [INJECT_PORT]
        self.inputs: dict[int, list[InputVC]] = {
            key: [InputVC() for _ in range(num_vcs)] for key in self.input_keys
        }
        #: output ports: outgoing channel ids (ejection handled separately).
        self.output_channels: list[int] = sorted(network.outputs[node].values())
        self.out_alloc: dict[int, list[tuple[int, int] | None]] = {
            ch: [None] * num_vcs for ch in self.output_channels
        }
        self.credits: dict[int, list[int]] = {
            ch: [self.config.buffer_depth_flits] * num_vcs for ch in self.output_channels
        }
        #: round-robin pointers for switch allocation, per output port.
        self._rr_pointer: dict[int, int] = {ch: 0 for ch in self.output_channels + [EJECT_PORT]}
        #: Number of flits currently buffered across all input VCs; the
        #: simulator's active-set scheduler skips routers at zero.
        self.buffered_count = 0

        # Hot-path precomputation: the (port, VC) scan order of the two-phase
        # reference implementation, flattened into one list, and the routing
        # tables collapsed into destination -> outgoing-channel-id arrays.
        self._vc_states: list[tuple[int, int, InputVC]] = [
            (key, vc_index, state)
            for key in self.input_keys
            for vc_index, state in enumerate(self.inputs[key])
        ]
        self._switch_ports: list[int] = self.output_channels + [EJECT_PORT]
        minimal, escape = network.compiled_routes()
        self._minimal_channel: list[int] = minimal[node]
        self._escape_channel: list[int] = escape[node]

    # ----------------------------------------------------------- occupancy
    def has_work(self) -> bool:
        """``True`` if any input VC holds flits (the router needs stepping)."""
        return self.buffered_count > 0

    def buffered_flits(self) -> int:
        """Total number of flits currently buffered in this router."""
        return self.buffered_count

    # ------------------------------------------------------------ receiving
    def receive_flit(self, channel_id: int, vc: int, flit: Flit, cycle: int) -> None:
        """Accept a flit arriving on an input channel (or the injection port)."""
        ready = cycle + self.config.router_pipeline_cycles
        self.inputs[channel_id][vc].buffer.append((flit, ready))
        self.buffered_count += 1

    def receive_credit(self, channel_id: int, vc: int) -> None:
        """Accept a credit returned by the downstream router."""
        self.credits[channel_id][vc] += 1

    def injection_space(self, vc: int) -> bool:
        """``True`` if the injection port VC has a free buffer slot."""
        return len(self.inputs[INJECT_PORT][vc].buffer) < self.config.buffer_depth_flits

    def free_injection_vc(self) -> int | None:
        """Return an idle injection VC (no buffered flits, no allocation), if any."""
        for vc, state in enumerate(self.inputs[INJECT_PORT]):
            if not state.busy:
                return vc
        return None

    # ------------------------------------------------------------- stepping
    def step(
        self,
        cycle: int,
        send_flit: Callable[[int, int, Flit], None],
        send_credit: Callable[[int, int], None],
        eject: Callable[[Flit, int], None],
    ) -> int:
        """Run one cycle of the router.  Returns the number of flits forwarded."""
        config = self.config
        node = self.node
        out_alloc = self.out_alloc
        credits = self.credits
        adaptive_vcs = config.adaptive_vcs
        escape_vc = config.escape_vc
        has_adaptive_layer = config.num_vcs > 1
        minimal_channel = self._minimal_channel
        escape_channel = self._escape_channel

        # Phase 1 — VC allocation + switch candidacy, one pass over all VCs.
        # Buckets list each output port's candidates in (input port, VC)
        # order, exactly the order the reference per-port scan visits them.
        buckets: dict[int, list[tuple[int, int, InputVC]]] = {}
        for key, vc_index, state in self._vc_states:
            buffer = state.buffer
            if not buffer:
                continue
            flit, ready = buffer[0]
            if ready > cycle:
                continue
            out_channel = state.out_channel
            if out_channel is None:
                if not flit.is_head:
                    # Packets never interleave within an input VC (the
                    # upstream output VC is held until the tail), so a body
                    # flit at the front always inherits the head's
                    # allocation; nothing to do.
                    continue
                destination = flit.destination
                if destination == node:
                    state.out_channel = out_channel = EJECT_PORT
                    state.out_vc = 0
                else:
                    if not flit.escape and has_adaptive_layer:
                        channel = minimal_channel[destination]
                        alloc = out_alloc[channel]
                        for vc in adaptive_vcs:
                            if alloc[vc] is None:
                                alloc[vc] = (key, vc_index)
                                state.out_channel = out_channel = channel
                                state.out_vc = vc
                                break
                    if out_channel is None:
                        channel = escape_channel[destination]
                        alloc = out_alloc[channel]
                        if alloc[escape_vc] is None:
                            alloc[escape_vc] = (key, vc_index)
                            state.out_channel = out_channel = channel
                            state.out_vc = escape_vc
                            flit.escape = True
                            flit.packet.used_escape = True
                        else:
                            continue  # no output VC free this cycle
            if out_channel != EJECT_PORT and credits[out_channel][state.out_vc] <= 0:
                continue  # no downstream buffer space
            bucket = buckets.get(out_channel)
            if bucket is None:
                buckets[out_channel] = [(key, vc_index, state)]
            else:
                bucket.append((key, vc_index, state))

        if not buckets:
            return 0

        # Phase 2 — switch allocation + traversal: per output port, pick the
        # round-robin winner among candidates whose input port has not yet
        # forwarded a flit this cycle.
        rr_pointer = self._rr_pointer
        used_inputs: set[int] = set()
        forwarded = 0
        for out_port in self._switch_ports:
            bucket = buckets.get(out_port)
            if not bucket:
                continue
            if used_inputs:
                candidates = [entry for entry in bucket if entry[0] not in used_inputs]
                if not candidates:
                    continue
            else:
                candidates = bucket
            pointer = rr_pointer[out_port]
            winner = candidates[pointer % len(candidates)]
            rr_pointer[out_port] = pointer + 1
            key, vc_index, state = winner
            used_inputs.add(key)
            flit, _ = state.buffer.popleft()
            self.buffered_count -= 1
            forwarded += 1

            # Return a credit to the upstream router for the freed buffer slot.
            if key != INJECT_PORT:
                send_credit(key, vc_index)

            if out_port == EJECT_PORT:
                eject(flit, cycle)
                if flit.is_tail:
                    state.out_channel = None
                    state.out_vc = None
                continue

            out_vc = state.out_vc
            assert out_vc is not None
            credits[out_port][out_vc] -= 1
            flit.vc = out_vc
            flit.hops += 1
            send_flit(out_port, out_vc, flit)
            if flit.is_tail:
                out_alloc[out_port][out_vc] = None
                state.out_channel = None
                state.out_vc = None
        return forwarded
