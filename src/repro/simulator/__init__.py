"""Cycle-accurate NoC simulator (the BookSim2 substitute of the toolchain).

The paper feeds its physical model's link-latency estimates, together with the
router architecture, routing algorithm and traffic pattern, into the
cycle-accurate BookSim2 simulator to obtain zero-load latency and saturation
throughput (Figure 3).  BookSim2 is a C++ project and not available here, so
this package implements the required subset from scratch:

* input-queued routers with virtual channels and credit-based flow control,
* a configurable router pipeline latency,
* multi-cycle (pipelined) links, parameterised per link by the physical model,
* table-based minimal routing with a deadlock-free escape layer
  (Duato-style: adaptive minimal VCs + an up*/down* escape VC),
* synthetic traffic patterns (uniform random, transpose, bit-complement,
  tornado, neighbour, hotspot) with Bernoulli injection,
* trace replay of recorded application workloads
  (:class:`~repro.simulator.traffic.TraceInjector` +
  :func:`~repro.simulator.sweep.replay_trace`) with per-phase statistics,
* warmup / measurement / drain phases, latency and throughput statistics,
* load sweeps that extract zero-load latency and saturation throughput,
* pluggable, bit-identical kernel implementations behind the
  :class:`~repro.simulator.engine.Engine` interface (``reference`` object
  graph, ``soa`` struct-of-arrays, ``sanitizer`` audited, ``vec``
  vectorized numpy; see :mod:`repro.simulator.engine`), selected via
  ``SimulationConfig(engine=...)``,
* multi-point batching (:class:`~repro.simulator.batch.BatchSimulator`,
  :func:`~repro.simulator.sweep.run_batch`): many (seed, load-point) runs
  of one compiled network fused into a single ``vec`` kernel invocation,
  used transparently by the sweeps when ``engine="vec"``.
"""

from repro.simulator.batch import BatchSimulator

from repro.simulator.engine import (
    DEFAULT_ENGINE,
    ENGINE_FACTORIES,
    Engine,
    available_engines,
    check_engine_name,
    make_engine,
)
from repro.simulator.flit import Flit, Packet
from repro.simulator.traffic import (
    TRAFFIC_FACTORIES,
    TrafficPattern,
    TraceInjector,
    UniformRandomTraffic,
    TransposeTraffic,
    BitComplementTraffic,
    TornadoTraffic,
    NeighborTraffic,
    HotspotTraffic,
    available_traffic_patterns,
    make_traffic,
    make_traffic_pattern,
)
from repro.simulator.routing_tables import RoutingTables, build_routing_tables
from repro.simulator.network import Network, NetworkConfig
from repro.simulator.simulation import SimulationConfig, Simulator
from repro.simulator.statistics import PhaseStats, SimulationStats
from repro.simulator.sweep import (
    LoadSweepResult,
    measure_zero_load_latency,
    find_saturation_throughput,
    replay_trace,
    run_batch,
    run_load_sweep,
)

__all__ = [
    "DEFAULT_ENGINE",
    "ENGINE_FACTORIES",
    "Engine",
    "available_engines",
    "check_engine_name",
    "make_engine",
    "Flit",
    "Packet",
    "TrafficPattern",
    "UniformRandomTraffic",
    "TransposeTraffic",
    "BitComplementTraffic",
    "TornadoTraffic",
    "NeighborTraffic",
    "HotspotTraffic",
    "TRAFFIC_FACTORIES",
    "available_traffic_patterns",
    "make_traffic",
    "make_traffic_pattern",
    "TraceInjector",
    "RoutingTables",
    "build_routing_tables",
    "Network",
    "NetworkConfig",
    "SimulationConfig",
    "Simulator",
    "SimulationStats",
    "PhaseStats",
    "BatchSimulator",
    "LoadSweepResult",
    "measure_zero_load_latency",
    "find_saturation_throughput",
    "replay_trace",
    "run_batch",
    "run_load_sweep",
]
