"""The simulation-engine interface.

An :class:`Engine` is one interchangeable implementation of the cycle-based
kernel: it is built from a prebuilt :class:`~repro.simulator.network.Network`
(which already carries the routing tables and the physical model's per-link
latencies), steps the warmup/measurement/drain phases, and emits a
:class:`~repro.simulator.statistics.SimulationStats`.  Engines differ only in
how they *represent* the simulated state — every engine must produce
**bit-identical** statistics for the same ``(topology, config, seed, trace)``
(enforced by ``tests/unit/test_simulation_golden.py`` and the cross-engine
differential tests in ``tests/unit/test_engine_equivalence.py``).

The base class owns everything that is representation-independent and whose
ordering is observable in the statistics: traffic generation (the Bernoulli
:class:`~repro.simulator.traffic.InjectionProcess` or the deterministic
:class:`~repro.simulator.traffic.TraceInjector` — both consume randomness and
trace records in exactly one order), the phase boundaries of a run, the
statistics accumulator (including per-phase configuration for trace replays),
and finalization.  Subclasses implement :meth:`run`.

Engines are registered by name in :data:`repro.simulator.engine.ENGINE_FACTORIES`
and selected through ``SimulationConfig(engine=...)`` — see
:mod:`repro.simulator.engine`.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from typing import TYPE_CHECKING

from repro.simulator.statistics import SimulationStats, _Accumulator
from repro.simulator.traffic import (
    InjectionProcess,
    TraceInjector,
    make_traffic_pattern,
)

if TYPE_CHECKING:  # imported for type hints only; no runtime dependency
    from repro.simulator.network import Network
    from repro.simulator.simulation import SimulationConfig
    from repro.topologies.base import Topology
    from repro.workloads.trace import WorkloadTrace


class Engine(ABC):
    """One implementation of the cycle-accurate simulation kernel.

    Parameters
    ----------
    topology:
        The simulated topology (used for traffic-pattern construction).
    config:
        The run configuration.
    network:
        A prebuilt :class:`~repro.simulator.network.Network` matching
        ``config.network_config()`` — validation happens in
        :class:`~repro.simulator.simulation.Simulator`, which is the only
        caller that constructs engines from unchecked inputs.
    trace:
        Optional :class:`~repro.workloads.trace.WorkloadTrace` to replay
        instead of Bernoulli injection (already validated against the
        topology's tile count).
    """

    #: Registry identifier of the engine (set by subclasses).
    name: str = ""

    def __init__(
        self,
        topology: "Topology",
        config: "SimulationConfig",
        network: "Network",
        trace: "WorkloadTrace | None" = None,
    ) -> None:
        self.topology = topology
        self.config = config
        self.network = network
        self._trace = trace
        self._trace_injector: TraceInjector | None = None
        self._trace_duration = 0
        if trace is not None:
            self.injection = None
            self._trace_injector = TraceInjector(
                trace.cycles, trace.sources, trace.destinations, trace.sizes
            )
            self._trace_duration = max(1, trace.duration)
        else:
            pattern = make_traffic_pattern(config.traffic, topology)
            self.injection = InjectionProcess(
                pattern,
                config.injection_rate,
                config.packet_size_flits,
                seed=config.seed,
            )

        self._accumulator = _Accumulator()
        if trace is not None and trace.phases:
            counts = trace.phase_record_counts()
            self._accumulator.configure_phases(
                names=list(trace.phase_names),
                spans=[(phase.start_cycle, phase.end_cycle) for phase in trace.phases],
                created=[packets for packets, _ in counts],
                offered_flits=[flits for _, flits in counts],
                phase_of_cycle=trace.phase_of_cycle_table(),
            )
        self._packet_counter = 0
        self._cycle = 0
        self._packets_measured = 0
        self._measured_in_flight = 0

    @property
    def cycles_simulated(self) -> int:
        """Number of cycles the kernel has advanced through so far."""
        return self._cycle

    @property
    def trace_mode(self) -> bool:
        """``True`` when the engine replays a trace instead of injecting."""
        return self._trace_injector is not None

    def _phase_bounds(self) -> tuple[int, int, int]:
        """``(warmup_end, measurement_end, hard_end)`` of this run.

        In trace mode the measurement window spans the whole trace (warmup is
        empty — every replayed packet is measured); ``drain_max_cycles``
        bounds the drain in both modes.
        """
        config = self.config
        if self.trace_mode:
            warmup_end = 0
            measurement_end = self._trace_duration
        else:
            warmup_end = config.warmup_cycles
            measurement_end = warmup_end + config.measurement_cycles
        return warmup_end, measurement_end, measurement_end + config.drain_max_cycles

    def _finalize(self, drained: bool) -> SimulationStats:
        """Turn the accumulated counters into the run's :class:`SimulationStats`."""
        if self._trace_injector is not None:
            offered = self._trace_injector.total_flits / (
                self._trace_duration * self.network.num_nodes
            )
            return self._accumulator.finalize(
                offered_load=offered,
                measurement_cycles=self._trace_duration,
                num_tiles=self.network.num_nodes,
                packets_measured=self._packets_measured,
                drained=drained,
            )
        return self._accumulator.finalize(
            offered_load=self.config.injection_rate,
            measurement_cycles=self.config.measurement_cycles,
            num_tiles=self.network.num_nodes,
            packets_measured=self._packets_measured,
            drained=drained,
        )

    @abstractmethod
    def run(self) -> SimulationStats:
        """Run warmup, measurement and drain and return the statistics."""


__all__ = ["Engine"]
