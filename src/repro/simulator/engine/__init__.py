"""Pluggable simulation engines.

The cycle-accurate kernel exists in interchangeable implementations behind
the :class:`~repro.simulator.engine.base.Engine` interface:

``reference``
    The object-graph kernel (:class:`ReferenceEngine`) — one
    :class:`~repro.simulator.router.Router` object per node, flit objects in
    per-VC deques.  The semantic ground truth; it produced the goldens in
    ``tests/unit/test_simulation_golden.py``.
``soa``
    The struct-of-arrays kernel (:class:`SoAEngine`) — all hot state in flat
    preallocated columns indexed by compiled channel/VC ids.  Bit-identical
    to ``reference`` and several times faster (see ``docs/PERFORMANCE.md``
    and ``BENCH_simulator.json``).
``sanitizer``
    The reference kernel plus per-cycle runtime invariant checks
    (:class:`SanitizerEngine`) — flit/credit conservation, buffer bounds,
    allocation consistency and timestamp monotonicity, raising
    :class:`~repro.simulator.engine.sanitizer.SanitizerError` with cycle/
    router/VC context on the first violation.  Bit-identical statistics,
    slower; intended for debugging and CI (see ``docs/VERIFICATION.md``).
``vec``
    The vectorized numpy kernel (:class:`VecEngine`) — router passes run as
    masked array operations over every node at once, with a leading batch
    axis that fuses many ``(seed, load point)`` runs of one compiled network
    into a single kernel (:func:`~repro.simulator.engine.vec.run_batched`,
    surfaced as :class:`~repro.simulator.batch.BatchSimulator` and the
    batched sweep fast paths).  Bit-identical to ``reference``; fastest on
    large networks and batched sweeps (see ``docs/PERFORMANCE.md``).

Engines are selected by name through ``SimulationConfig(engine=...)``, which
every launching layer threads through: ``sweep``/``replay_trace``,
``ExperimentSpec(sim={"engine": ...})`` (excluded from ``spec_id`` — all
engines produce identical results, so they share memoization cache entries),
the ``repro`` CLI ``--engine`` flags, and ``repro.optimize.run_search``.

This mirrors the topology/traffic/workload registries: a single mapping to
enumerate and instantiate engines by name.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Type

from repro.simulator.engine.base import Engine
from repro.simulator.engine.reference import ReferenceEngine
from repro.simulator.engine.sanitizer import SanitizerEngine, SanitizerError
from repro.simulator.engine.soa import SoAEngine
from repro.simulator.engine.vec import VecEngine
from repro.utils.validation import ValidationError

if TYPE_CHECKING:  # imported for type hints only; no runtime dependency
    from repro.simulator.network import Network
    from repro.simulator.simulation import SimulationConfig
    from repro.topologies.base import Topology
    from repro.workloads.trace import WorkloadTrace

#: Engine registry: name -> engine class.
ENGINE_FACTORIES: dict[str, Type[Engine]] = {
    ReferenceEngine.name: ReferenceEngine,
    SoAEngine.name: SoAEngine,
    SanitizerEngine.name: SanitizerEngine,
    VecEngine.name: VecEngine,
}

#: The engine a :class:`SimulationConfig` uses unless told otherwise.
DEFAULT_ENGINE = ReferenceEngine.name


def available_engines() -> list[str]:
    """Return the identifiers of all registered engines."""
    return sorted(ENGINE_FACTORIES)


def check_engine_name(name: str) -> None:
    """Raise :class:`ValidationError` unless ``name`` is a registered engine."""
    if name not in ENGINE_FACTORIES:
        raise ValidationError(
            f"unknown simulation engine {name!r}; known: {available_engines()}"
        )


def make_engine(
    name: str,
    topology: "Topology",
    config: "SimulationConfig",
    network: "Network",
    trace: "WorkloadTrace | None" = None,
) -> Engine:
    """Instantiate a registered engine by identifier."""
    check_engine_name(name)
    return ENGINE_FACTORIES[name](topology, config, network, trace=trace)


__all__ = [
    "DEFAULT_ENGINE",
    "ENGINE_FACTORIES",
    "Engine",
    "ReferenceEngine",
    "SanitizerEngine",
    "SanitizerError",
    "SoAEngine",
    "VecEngine",
    "available_engines",
    "check_engine_name",
    "make_engine",
]
