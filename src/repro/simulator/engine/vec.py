"""The ``vec`` engine: a vectorized, batch-capable numpy kernel.

Same cycle-level semantics as the ``reference`` and ``soa`` engines — same
VC-allocation scan order, same round-robin switch arbitration, same
event-wheel timing, same statistics accumulation — but each router pass is
executed as **masked array operations over every router of every batch lane
at once** instead of per-VC Python loops.  A leading batch axis lets one
kernel step many independent simulations of the same compiled network (one
per ``(seed, load point)``), which is the shape of saturation sweeps and
successive-halving rungs; see :class:`repro.simulator.batch.BatchSimulator`.

Why vectorization preserves bit-identity
----------------------------------------
The sequential kernel's cycle is: deliver events, create packets, inject
flits, then step routers in ascending node order (phase 1: VC allocation and
switch candidacy per occupied input VC in ascending id order; phase 2:
round-robin switch arbitration per output port in ascending port order,
ejection last).  Within one cycle the routers are *independent*: a router
only reads and writes the allocation/credit/round-robin state of its own
output channels, and every cross-router effect (flit arrival, credit return)
is scheduled at least one cycle ahead through the event wheel.  The node
loop can therefore run as one data-parallel pass, provided the three
*intra-router* sequential dependencies are reproduced exactly:

1. **Adaptive VC allocation order** — earlier input VCs of a router consume
   free adaptive VCs (1..V-1) of an output channel before later ones.  The
   vectorized pass groups requesters by output channel (a channel belongs to
   exactly one source router), ranks them in ascending input-VC order with a
   stable argsort, and hands the *r*-th requester the *r*-th free VC.
2. **Escape VC allocation order** — only the lowest-id requester of a
   channel's escape VC 0 can take it.  Rank 0 of each escape group wins iff
   VC 0 is free; the adaptive and escape pools are disjoint (VCs 1..V-1 vs
   VC 0), so the two vectorized steps compose exactly like the interleaved
   sequential scan.
3. **Switch arbitration order** — ports arbitrate in ascending id order
   (ejection last) and an input port that forwarded a flit is excluded from
   later ports of the same router.  When no input port is contested across
   two output ports (the common case), the exclusion can never trigger and
   every port's round-robin winner is computed in one grouped pass.
   Otherwise the pass runs *rounds*: each round arbitrates every router's
   lowest-id remaining port simultaneously (round-robin pointer advanced
   exactly when the sequential kernel would), then filters out candidates
   whose input port was just used.  The used-set only grows during a
   router's port scan, so filtering between rounds is equivalent to the
   sequential at-processing-time filter; a port whose candidates were all
   filtered disappears without advancing its pointer, matching the
   sequential ``continue``.

The input-VC id space is renumbered **node-major** (each router's incoming
channels in ascending channel-id order, then its injection port, VCs 0..V-1
per port) so that one global ``nonzero`` over the occupancy mask yields
every router's occupied VCs already in the sequential scan order.  Bases are
V-aligned, so ``ivc % V`` still recovers the VC index for credit returns.

Statistics stay bit-identical because each lane's accumulator lists are
extended in ascending ``(lane, node)`` delivery order — a router ejects at
most one flit per cycle, so this equals the sequential per-cycle ejection
order, which the latency lists observe through the float summation in
``finalize()`` — and every other accumulator field is a commutative counter.

Batch lanes are fully independent simulations: lane state carries a leading
batch axis, per-lane traffic generators and accumulators live on per-lane
:class:`~repro.simulator.engine.base.Engine` objects, and a finished lane is
frozen (masked out of injection, routing and accounting) while the others
run on.  Wheel events that land in a frozen lane only touch its dead buffer
state, never its statistics.

Lane recycling and local cycles
-------------------------------
A finished lane is *retired* rather than merely frozen: its statistics are
finalized immediately, every pending wheel event targeting it is purged, and
its slot's state is scrubbed back to pristine so a fresh engine can be
re-armed into the slot mid-run (:meth:`_VecKernel.run` takes a ``pending``
queue and an ``on_finish`` hook).  That keeps the batch axis full instead of
waiting on the slowest lane — the mechanism behind the gang scheduler in
:mod:`repro.experiments.scheduler`.  To make a lane's observable timeline
independent of *when* its slot was armed, each lane carries a cycle offset:
packet creation/injection stamps and all latency arithmetic use the lane's
**local** cycle (``kernel cycle - offset``), while buffers and event wheels
keep kernel-absolute timestamps.  A lane armed at kernel cycle ``c`` is
therefore bit-identical to the same engine run in a fresh kernel.

Quiescent fast-forward
----------------------
The kernel tracks three idle counters (queued packets, packets mid-
injection, buffered flits).  When all are zero, the event wheels are empty,
and no running lane draws Bernoulli randomness every cycle (only trace lanes
and rate-0 lanes qualify — a ``p > 0`` injector consumes RNG each cycle, so
skipping would change the draw sequence), the cycle counter jumps straight
to the next event: the earliest wheel entry, the next trace record's
creation cycle, or a lane's phase boundary.  This mirrors the ``soa``
engine's quiescent-router parking at whole-kernel granularity and removes
the dead cycles that dominated long drains and sparse trace replays.

Single-point runs use the same kernel with a batch of one.  Bit-identity
with the reference engine — batched and single — is enforced by the goldens
in ``tests/unit/test_simulation_golden.py`` and the randomized differential
tests in ``tests/unit/test_engine_equivalence.py``; per-cycle numpy call
overhead and measured speedups are discussed in ``docs/PERFORMANCE.md``.
"""

from __future__ import annotations

import numpy as np

from repro.simulator.engine.base import Engine
from repro.simulator.statistics import SimulationStats

#: ``ivc_out_ch`` sentinel: the input VC holds no output allocation.
_UNROUTED = -2
#: ``ivc_out_ch`` sentinel: the input VC is allocated to the local ejection port.
_EJECT = -1
#: ``_front_ready`` sentinel: the input VC is empty (or its lane is frozen).
#: ``_front_ready`` is int32 — the compare against the current cycle scans the
#: whole array every cycle, and cycle counts stay far below 2**31.
_NEVER = np.iinfo(np.int32).max

_I64 = np.int64


def _boundaries(sorted_keys: np.ndarray) -> np.ndarray:
    """Group-start flags of a sorted key array (``True`` at each new key)."""
    flags = np.empty(len(sorted_keys), dtype=bool)
    flags[0] = True
    np.not_equal(sorted_keys[1:], sorted_keys[:-1], out=flags[1:])
    return flags


class _GrowColumn:
    """Append-only ``int64`` column with amortized doubling growth.

    ``data`` is the backing array; only ``data[:size]`` is meaningful, and
    newly reserved entries are zero.  Readers gather with flit/packet-id
    index arrays directly on ``data``.
    """

    __slots__ = ("data", "size")

    def __init__(self, capacity: int = 1024) -> None:
        self.data = np.zeros(capacity, dtype=_I64)
        self.size = 0

    def reserve(self, count: int) -> int:
        """Grow to hold ``count`` more entries; return the first new index."""
        start = self.size
        needed = start + count
        if needed > len(self.data):
            capacity = len(self.data)
            while capacity < needed:
                capacity *= 2
            grown = np.zeros(capacity, dtype=_I64)
            grown[:start] = self.data[:start]
            self.data = grown
        self.size = needed
        return start


class _CompiledNetwork:
    """Static per-network index tables shared by every lane of a kernel."""

    def __init__(self, network) -> None:
        config = network.config
        self.num_nodes = num_nodes = network.num_nodes
        self.num_channels = num_channels = len(network.channels)
        self.num_vcs = num_vcs = config.num_vcs
        self.depth = config.buffer_depth_flits
        self.pipeline = config.router_pipeline_cycles

        self.chan_latency = np.array(
            [channel.latency_cycles for channel in network.channels], dtype=_I64
        )
        #: Every channel has the same latency: event scheduling needs no
        #: per-event latency gather or grouping (the overwhelmingly common
        #: case — the physical model's default is single-cycle links).
        self.uniform_latency = bool(
            (self.chan_latency == self.chan_latency[0]).all()
        ) if num_channels else True
        minimal, escape = network.compiled_routes()
        self.minimal = np.ascontiguousarray(np.array(minimal, dtype=_I64).reshape(-1))
        self.escape = np.ascontiguousarray(np.array(escape, dtype=_I64).reshape(-1))

        # Node-major input-VC numbering: per node, incoming channels in
        # ascending channel-id order, then the injection port; V VCs per
        # port.  ``network.inputs[node]`` ascends by construction (channels
        # are numbered in link order), which is exactly the reference scan
        # order — asserted here because the renumbering depends on it.
        num_ivcs = (num_channels + num_nodes) * num_vcs
        self.num_ivcs = num_ivcs
        self.ivc_node = np.empty(num_ivcs, dtype=_I64)
        self.ivc_chan = np.empty(num_ivcs, dtype=_I64)
        self.ivc_inport = np.empty(num_ivcs, dtype=_I64)
        self.chan_ivc_base = np.empty(num_channels, dtype=_I64)
        self.inj_ivc_base = np.empty(num_nodes, dtype=_I64)
        position = 0
        inport = 0
        for node in range(num_nodes):
            incoming = network.inputs[node]
            assert list(incoming) == sorted(incoming)
            for channel in incoming:
                self.chan_ivc_base[channel] = position
                self.ivc_node[position : position + num_vcs] = node
                self.ivc_chan[position : position + num_vcs] = channel
                self.ivc_inport[position : position + num_vcs] = inport
                position += num_vcs
                inport += 1
            self.inj_ivc_base[node] = position
            self.ivc_node[position : position + num_vcs] = node
            self.ivc_chan[position : position + num_vcs] = -1
            self.ivc_inport[position : position + num_vcs] = inport
            position += num_vcs
            inport += 1
        assert position == num_ivcs
        self.num_inports = inport

        #: Round-robin/port-key space: channels ``[0, C)``, then one
        #: ejection pseudo-port per node at ``C + node`` (sorts after every
        #: channel, so ejection arbitrates last — as in the reference scan).
        self.num_ports = num_channels + num_nodes
        self.wheel_size = network.max_latency_cycles + 1


class _VecKernel:
    """One batched run: shared compiled network, per-lane state and wheels.

    All per-``(lane, input VC)`` state lives in flat arrays indexed by the
    global id ``gi = lane * num_ivcs + ivc``; the ``g_*`` tables precompute
    every per-``gi`` index expression the router pass needs (lane offsets
    into the credit/allocation/round-robin spaces), turning hot-path
    arithmetic chains into single gathers.
    """

    def __init__(self, network, lanes: "list[Engine]") -> None:
        if not lanes:
            raise ValueError("a batched run needs at least one lane")
        for lane in lanes:
            if lane.network is not network:
                raise ValueError("every batch lane must share the compiled network")
        self._lanes = lanes
        self._net = net = _CompiledNetwork(network)

        num_lanes = len(lanes)
        self._num_lanes = num_lanes
        num_ivcs = net.num_ivcs
        num_nodes = net.num_nodes
        depth = net.depth
        cv = net.num_channels * net.num_vcs

        # Per-(lane, ivc) hot state, flattened behind the leading batch axis.
        self._buf_fid = np.zeros(num_lanes * num_ivcs * depth, dtype=_I64)
        self._buf_ready = np.zeros(num_lanes * num_ivcs * depth, dtype=_I64)
        self._buf_head = np.zeros(num_lanes * num_ivcs, dtype=_I64)
        self._buf_len = np.zeros(num_lanes * num_ivcs, dtype=_I64)
        self._ivc_out_ch = np.full(num_lanes * num_ivcs, _UNROUTED, dtype=_I64)
        self._ivc_out_vc = np.zeros(num_lanes * num_ivcs, dtype=_I64)
        self._out_alloc = np.full(num_lanes * cv, -1, dtype=_I64)
        self._credits = np.full(num_lanes * cv, depth, dtype=_I64)
        #: Per-(lane, channel) allocation headroom, kept in lockstep with
        #: ``_out_alloc``: free adaptive-VC count and escape-VC-0 openness.
        #: Lets phase 1 drop requesters of fully-allocated channels before
        #: any grouping work.
        self._adaptive_free = np.full(
            num_lanes * net.num_channels, net.num_vcs - 1, dtype=_I64
        )
        self._escape_free = np.ones(num_lanes * net.num_channels, dtype=bool)
        if net.num_vcs > 1:
            if net.num_vcs > 17:
                raise ValueError("vec engine supports at most 17 virtual channels")
            adaptive = net.num_vcs - 1
            self._pow2 = (1 << np.arange(adaptive, dtype=_I64)).astype(_I64)
            #: ``_nth_set_bit[mask, r]`` = index of the r-th set bit of
            #: ``mask`` — the r-th free adaptive VC of a channel whose free
            #: set encodes to ``mask`` (junk where r >= popcount).
            table = np.zeros((1 << adaptive, adaptive), dtype=_I64)
            for mask in range(1 << adaptive):
                set_bits = [b for b in range(adaptive) if mask >> b & 1]
                table[mask, : len(set_bits)] = set_bits
            self._nth_set_bit = table
        self._rr = np.zeros(num_lanes * net.num_ports, dtype=_I64)
        #: Scratch for the round-based arbitration path (reset after use).
        self._used_inports = np.zeros(num_lanes * net.num_inports, dtype=bool)
        #: Front-of-buffer cache: the flit id at each input VC's head and
        #: the cycle it leaves the router pipeline (``_NEVER`` when the VC
        #: is empty).  Maintained at push/pop time so the router pass opens
        #: with one vector compare instead of an occupancy scan + gathers.
        self._front_fid = np.zeros(num_lanes * num_ivcs, dtype=_I64)
        self._front_ready = np.full(num_lanes * num_ivcs, _NEVER, dtype=np.int32)
        #: Occupancy gate: ``False`` over a finished lane's ivc range, so
        #: late wheel arrivals into a frozen lane never refresh its front
        #: cache and re-enter the router pass (its statistics are final).
        self._gate = np.ones(num_lanes * num_ivcs, dtype=bool)
        self._all_running = True

        # Precomputed per-gi index tables.
        lane_index = np.repeat(np.arange(num_lanes, dtype=_I64), num_ivcs)
        node = np.tile(net.ivc_node, num_lanes)
        self._g_node = node
        self._g_chan = np.tile(net.ivc_chan, num_lanes)
        self._g_lane = lane_index
        self._g_lane_cv = lane_index * cv
        self._g_lane_c = lane_index * net.num_channels
        self._g_lane_ports = lane_index * net.num_ports
        self._g_eject_pk = self._g_lane_ports + net.num_channels + node
        self._g_eject_port = net.num_channels + node
        self._g_node_key = lane_index * num_nodes + node
        self._g_ck_base = (lane_index * num_nodes + node) * net.num_ports
        self._g_inport_key = lane_index * net.num_inports + np.tile(
            net.ivc_inport, num_lanes
        )
        # Credit index of the upstream (channel, vc) slot a departing flit
        # frees; junk (unused) for injection-port ivcs.
        vc = np.tile(np.arange(num_ivcs, dtype=_I64) % net.num_vcs, num_lanes)
        self._g_credit_idx = self._g_lane_cv + np.where(
            self._g_chan >= 0, self._g_chan * net.num_vcs, 0
        ) + vc

        # Per-(lane, node) injection state, flat behind the batch axis.
        self._inj_queue: list[list[list[int]]] = [
            [[] for _ in range(num_nodes)] for _ in range(num_lanes)
        ]
        self._queue_len = np.zeros(num_lanes * num_nodes, dtype=_I64)
        self._inj_cur = np.full(num_lanes * num_nodes, -1, dtype=_I64)
        self._inj_end = np.zeros(num_lanes * num_nodes, dtype=_I64)
        self._inj_vc = np.full(num_lanes * num_nodes, -1, dtype=_I64)
        self._node_gate = np.ones(num_lanes * num_nodes, dtype=bool)
        n_lane = np.repeat(np.arange(num_lanes, dtype=_I64), num_nodes)
        n_node = np.tile(np.arange(num_nodes, dtype=_I64), num_lanes)
        self._g_n_lane = n_lane
        self._g_n_node = n_node
        self._g_n_inj_gi = n_lane * num_ivcs + net.inj_ivc_base[n_node]

        # Global (cross-lane) packet/flit metadata columns.  Id values are
        # interleaved across lanes; nothing observable depends on them.
        self._pkt_dst = _GrowColumn()
        self._pkt_size = _GrowColumn()
        self._pkt_created = _GrowColumn()
        self._pkt_injected = _GrowColumn()
        self._pkt_measured = _GrowColumn()
        self._pkt_escape = _GrowColumn()
        self._flit_pkt = _GrowColumn()
        self._flit_dest = _GrowColumn()
        self._flit_head = _GrowColumn()
        self._flit_tail = _GrowColumn()
        self._flit_escape = _GrowColumn()
        self._flit_hops = _GrowColumn()

        # Event wheels: each slot holds arrays to be concatenated and
        # scattered when the slot's cycle arrives.
        self._flit_wheel: list[list[tuple[np.ndarray, np.ndarray]]] = [
            [] for _ in range(net.wheel_size)
        ]
        self._credit_wheel: list[list[np.ndarray]] = [
            [] for _ in range(net.wheel_size)
        ]

        self._network = network
        self._bounds = [lane._phase_bounds() for lane in lanes]
        self._trace_mode = [lane.trace_mode for lane in lanes]
        #: Kernel cycle where each lane's local cycle 0 begins (0 for the
        #: initial lanes; the arming cycle for recycled slots).  The numpy
        #: copy serves the vectorized gathers in injection/ejection, the
        #: list the scalar per-lane loops.
        self._offsets = np.zeros(num_lanes, dtype=_I64)
        self._offset_list = [0] * num_lanes
        #: Idle counters: queued-but-unsegmented packets, packets mid-
        #: injection, and flits sitting in input buffers.  All zero (plus
        #: empty wheels) means the kernel is quiescent; they also gate the
        #: injection and router passes, which are provably no-ops then.
        self._queued_total = 0
        self._inflight_injections = 0
        self._buffered_total = 0
        #: Running lanes whose injector draws randomness every cycle
        #: (Bernoulli with p > 0).  Any such lane forbids fast-forwarding.
        self._num_unjumpable_running = sum(
            1 for lane in lanes if self._lane_unjumpable(lane)
        )

    @staticmethod
    def _lane_unjumpable(lane: "Engine") -> bool:
        return (
            lane.injection is not None
            and lane.injection._packet_probability > 0.0
        )

    # ------------------------------------------------------------- creation
    def _create_packets(self, cycle: int, in_measurement: list[bool], running) -> None:
        num_nodes = self._net.num_nodes
        offsets = self._offset_list
        for lane_index, lane in enumerate(self._lanes):
            if not running[lane_index]:
                continue
            local = cycle - offsets[lane_index]
            trace_mode = self._trace_mode[lane_index]
            if trace_mode:
                records = lane._trace_injector.packets_for_cycle(local)
                measured = True
            else:
                records = lane.injection.packets_for_cycle(local)
                measured = in_measurement[lane_index]
            if not records:
                continue
            count = len(records)
            base = self._pkt_dst.reserve(count)
            self._pkt_size.reserve(count)
            self._pkt_created.reserve(count)
            self._pkt_injected.reserve(count)
            self._pkt_measured.reserve(count)
            self._pkt_escape.reserve(count)
            end = base + count
            columns = np.array(records, dtype=_I64)
            self._pkt_dst.data[base:end] = columns[:, 1]
            if trace_mode:
                self._pkt_size.data[base:end] = columns[:, 2]
            else:
                self._pkt_size.data[base:end] = lane.config.packet_size_flits
            self._pkt_created.data[base:end] = local
            self._pkt_injected.data[base:end] = -1
            self._pkt_measured.data[base:end] = 1 if measured else 0
            # pkt_escape: reserved entries are already zero.
            lane._packet_counter += count
            lane._accumulator.packets_created += count
            if measured:
                lane._packets_measured += count
                lane._measured_in_flight += count
            queues = self._inj_queue[lane_index]
            for position, record in enumerate(records):
                queues[record[0]].append(base + position)
            np.add.at(self._queue_len, lane_index * num_nodes + columns[:, 0], 1)
            self._queued_total += count

    def _segment_packets(self, packet_ids: np.ndarray) -> np.ndarray:
        """Append flit columns for ``packet_ids`` (in order); return first-flit ids."""
        sizes = self._pkt_size.data[packet_ids]
        total = int(sizes.sum())
        first = self._flit_pkt.reserve(total)
        self._flit_dest.reserve(total)
        self._flit_head.reserve(total)
        self._flit_tail.reserve(total)
        self._flit_escape.reserve(total)
        self._flit_hops.reserve(total)
        end = first + total
        starts = first + np.concatenate(([0], np.cumsum(sizes)[:-1]))
        self._flit_pkt.data[first:end] = np.repeat(packet_ids, sizes)
        self._flit_dest.data[first:end] = np.repeat(
            self._pkt_dst.data[packet_ids], sizes
        )
        # head/tail/escape/hops: reserved entries are already zero.
        self._flit_head.data[starts] = 1
        self._flit_tail.data[starts + sizes - 1] = 1
        return starts

    # ------------------------------------------------------------ injection
    def _inject_flits(self, cycle: int) -> None:
        net = self._net
        num_vcs = net.num_vcs
        buf_len = self._buf_len
        inj_cur = self._inj_cur
        inj_vc = self._inj_vc
        node_gate = self._node_gate

        # Start path: nodes with no packet in flight and a queued packet
        # look for an idle injection VC (no buffered flits, no allocation).
        # ``nonzero`` ascends in (lane, node) — the sequential segmentation
        # order, which fixes the global flit-id assignment.
        queued = (inj_cur < 0) & (self._queue_len > 0)
        if not self._all_running:
            queued &= node_gate
        if queued.any():
            flat = np.flatnonzero(queued)
            candidate_gi = self._g_n_inj_gi[flat, None] + np.arange(num_vcs)
            idle = (buf_len[candidate_gi] == 0) & (
                self._ivc_out_ch[candidate_gi] == _UNROUTED
            )
            has_idle = idle.any(axis=1)
            if has_idle.any():
                starters = flat[has_idle]
                start_vc = idle.argmax(axis=1)[has_idle]
                lanes = self._g_n_lane[starters]
                nodes = self._g_n_node[starters]
                packet_ids = np.empty(len(starters), dtype=_I64)
                for position in range(len(starters)):
                    packet_ids[position] = self._inj_queue[lanes[position]][
                        nodes[position]
                    ].pop(0)
                self._queue_len[starters] -= 1
                self._queued_total -= len(starters)
                self._inflight_injections += len(starters)
                firsts = self._segment_packets(packet_ids)
                inj_cur[starters] = firsts
                self._inj_end[starters] = firsts + self._pkt_size.data[packet_ids]
                inj_vc[starters] = start_vc

        # Continue path: every node with a packet in flight pushes its next
        # flit into the chosen injection VC if there is buffer space — at
        # most one flit per node per cycle.
        active = inj_cur >= 0
        if not self._all_running:
            active &= node_gate
        if not active.any():
            return
        flat = np.flatnonzero(active)
        gi = self._g_n_inj_gi[flat] + inj_vc[flat]
        length = buf_len[gi]
        has_space = length < net.depth
        if not has_space.any():
            return
        flat = flat[has_space]
        gi = gi[has_space]
        length = length[has_space]
        fid = inj_cur[flat]
        heads = self._flit_head.data[fid] == 1
        if heads.any():
            # Injection stamps are lane-local cycles (latency arithmetic in
            # ``_eject`` is local too, so recycled lanes stay bit-identical).
            self._pkt_injected.data[self._flit_pkt.data[fid[heads]]] = (
                cycle - self._offsets[self._g_n_lane[flat[heads]]]
            )
        slot = gi * net.depth + (self._buf_head[gi] + length) % net.depth
        ready_at = cycle + net.pipeline
        self._buf_fid[slot] = fid
        self._buf_ready[slot] = ready_at
        buf_len[gi] = length + 1
        self._buffered_total += len(gi)
        was_empty = length == 0
        if was_empty.any():
            empty_gi = gi[was_empty]
            self._front_fid[empty_gi] = fid[was_empty]
            self._front_ready[empty_gi] = ready_at
        nxt = fid + 1
        done = nxt >= self._inj_end[flat]
        inj_cur[flat] = np.where(done, -1, nxt)
        done_count = int(done.sum())
        if done_count:
            inj_vc[flat[done]] = -1
            self._inflight_injections -= done_count

    # ------------------------------------------------------- event delivery
    def _deliver_events(self, cycle: int) -> None:
        net = self._net
        slot = cycle % net.wheel_size
        flit_events = self._flit_wheel[slot]
        if flit_events:
            self._flit_wheel[slot] = []
            if len(flit_events) == 1:
                gi, fid = flit_events[0]
            else:
                gi = np.concatenate([event[0] for event in flit_events])
                fid = np.concatenate([event[1] for event in flit_events])
            # Each (lane, ivc) receives at most one flit per cycle (one
            # winner per channel per cycle, constant channel latency), so
            # plain fancy-index scatters are exact.
            length = self._buf_len[gi]
            index = gi * net.depth + (self._buf_head[gi] + length) % net.depth
            ready_at = cycle + net.pipeline
            self._buf_fid[index] = fid
            self._buf_ready[index] = ready_at
            self._buf_len[gi] = length + 1
            self._buffered_total += len(gi)
            was_empty = length == 0
            if not self._all_running:
                was_empty &= self._gate[gi]
            if was_empty.any():
                empty_gi = gi[was_empty]
                self._front_fid[empty_gi] = fid[was_empty]
                self._front_ready[empty_gi] = ready_at
        credit_events = self._credit_wheel[slot]
        if credit_events:
            self._credit_wheel[slot] = []
            if len(credit_events) == 1:
                index = credit_events[0]
            else:
                index = np.concatenate(credit_events)
            self._credits[index] += 1  # distinct (lane, channel, vc) per cycle

    def _grouped_rr(self, order: np.ndarray, sorted_port: np.ndarray) -> np.ndarray:
        """Round-robin winner per port group; advances the pointers.

        ``order`` indexes the candidates sorted by ``sorted_port`` (stable,
        so same-port candidates stay in ascending input-VC order).
        """
        port_first = _boundaries(sorted_port)
        offsets = np.flatnonzero(port_first)
        counts = np.diff(np.append(offsets, len(sorted_port)))
        unique_port = sorted_port[offsets]
        pointer = self._rr[unique_port]
        self._rr[unique_port] = pointer + 1
        return order[offsets + pointer % counts]

    # ---------------------------------------------------------- router pass
    def _route(self, cycle: int, in_measurement: list[bool]) -> None:
        net = self._net
        num_vcs = net.num_vcs
        num_channels = net.num_channels
        num_nodes = net.num_nodes
        depth = net.depth
        buf_len = self._buf_len
        ivc_out_ch = self._ivc_out_ch
        ivc_out_vc = self._ivc_out_vc

        # The front cache makes the "occupied with a pipeline-ready front
        # flit" scan a single compare; ascending gi is the sequential scan
        # order.  Frozen lanes sit at ``_NEVER`` and never appear.
        gi = np.flatnonzero(self._front_ready <= cycle)
        if gi.size == 0:
            return
        fid = self._front_fid[gi]

        out_ch = ivc_out_ch[gi]
        flit_head = self._flit_head.data
        flit_dest = self._flit_dest.data

        # ---- Phase 1a: route + VC-allocate unrouted head flits.
        unrouted = out_ch == _UNROUTED
        if unrouted.any():
            heads = unrouted & (flit_head[fid] == 1)
            if heads.any():
                h_gi = gi[heads]
                h_fid = fid[heads]
                node = self._g_node[h_gi]
                dest = flit_dest[h_fid]
                local = dest == node
                if local.any():
                    ivc_out_ch[h_gi[local]] = _EJECT
                    ivc_out_vc[h_gi[local]] = 0
                remote = ~local
                adaptive_won = np.zeros(len(h_fid), dtype=bool)
                if num_vcs > 1:
                    wants = remote & (self._flit_escape.data[h_fid] == 0)
                    if wants.any():
                        w_pos = np.flatnonzero(wants)
                        channel = net.minimal[node[w_pos] * num_nodes + dest[w_pos]]
                        key = self._g_lane_c[h_gi[w_pos]] + channel
                        # Requesters of a fully-allocated channel fail the
                        # sequential scan outright — drop them before the
                        # grouping work (at saturation that is most of them).
                        open_ch = self._adaptive_free[key] > 0
                        if open_ch.any():
                            w_pos = w_pos[open_ch]
                            channel = channel[open_ch]
                            key = key[open_ch]
                            order = np.argsort(key, kind="stable")
                            sorted_key = key[order]
                            group_first = _boundaries(sorted_key)
                            group_id = np.cumsum(group_first) - 1
                            first_pos = np.flatnonzero(group_first)
                            rank = np.arange(len(sorted_key)) - first_pos[group_id]
                            unique_key = sorted_key[group_first]
                            free_count = self._adaptive_free[unique_key]
                            got = rank < free_count[group_id]
                            # The r-th ranked requester takes the r-th free
                            # adaptive VC, exactly like the sequential
                            # first-free scan: encode each group's free set
                            # as a bitmask and look the rank up in the
                            # precomputed nth-set-bit table.
                            alloc = self._out_alloc.reshape(-1, num_vcs)
                            free_bits = (alloc[unique_key, 1:] < 0).dot(
                                self._pow2
                            )
                            vc = (
                                self._nth_set_bit[
                                    free_bits[group_id[got]], rank[got]
                                ]
                                + 1
                            )
                            winner = order[got]  # positions within w_pos
                            win_gi = h_gi[w_pos[winner]]
                            alloc[key[winner], vc] = win_gi
                            ivc_out_ch[win_gi] = channel[winner]
                            ivc_out_vc[win_gi] = vc
                            adaptive_won[w_pos[winner]] = True
                            group_sizes = np.diff(
                                np.append(first_pos, len(sorted_key))
                            )
                            self._adaptive_free[unique_key] -= np.minimum(
                                group_sizes, free_count
                            )
                # ---- Phase 1b: escape VC 0 for everything still unrouted.
                wants_escape = remote & ~adaptive_won
                if wants_escape.any():
                    e_pos = np.flatnonzero(wants_escape)
                    channel = net.escape[node[e_pos] * num_nodes + dest[e_pos]]
                    key = self._g_lane_c[h_gi[e_pos]] + channel
                    open_esc = self._escape_free[key]
                    if open_esc.any():
                        e_pos = e_pos[open_esc]
                        channel = channel[open_esc]
                        key = key[open_esc]
                        order = np.argsort(key, kind="stable")
                        group_first = _boundaries(key[order])
                        taker = order[group_first]  # lowest-ivc requester
                        take_gi = h_gi[e_pos[taker]]
                        take_fid = h_fid[e_pos[taker]]
                        self._out_alloc.reshape(-1, num_vcs)[key[taker], 0] = (
                            take_gi
                        )
                        self._escape_free[key[taker]] = False
                        ivc_out_ch[take_gi] = channel[taker]
                        ivc_out_vc[take_gi] = 0
                        self._flit_escape.data[take_fid] = 1
                        self._pkt_escape.data[self._flit_pkt.data[take_fid]] = 1
            out_ch = ivc_out_ch[gi]  # refresh allocations

        # ---- Phase 1c: switch candidacy (allocated + credit available).
        out_vc = ivc_out_vc[gi]
        routed = out_ch >= 0
        candidate = out_ch == _EJECT
        if routed.any():
            r_pos = np.flatnonzero(routed)
            credit_index = (
                self._g_lane_cv[gi[r_pos]] + out_ch[r_pos] * num_vcs + out_vc[r_pos]
            )
            candidate[r_pos] = self._credits[credit_index] > 0
        if not candidate.any():
            return

        c_gi = gi[candidate]
        c_fid = fid[candidate]
        c_out_ch = out_ch[candidate]
        c_out_vc = out_vc[candidate]
        is_routed = c_out_ch >= 0
        port = np.where(is_routed, c_out_ch, self._g_eject_port[c_gi])
        port_key = self._g_lane_ports[c_gi] + port

        # ---- Phase 2: switch arbitration (see module docstring).
        # ``c_gi`` ascends, and the input port is monotone in the ivc id, so
        # ``inport_key`` arrives already sorted: contested input ports (two
        # candidates on one inport aiming at *different* output ports) show
        # up as adjacent runs.  Routers are independent, so only the nodes
        # owning such an inport need the round-based arbitration; everyone
        # else takes the single grouped round-robin pass.
        inport_key = self._g_inport_key[c_gi]
        duplicated = inport_key[1:] == inport_key[:-1]
        contested_adjacent = duplicated & (port_key[1:] != port_key[:-1])
        winners: list[np.ndarray] = []
        if contested_adjacent.any():
            node_key = self._g_node_key[c_gi]
            contested_nodes = np.zeros(
                self._num_lanes * net.num_nodes, dtype=bool
            )
            contested_nodes[node_key[np.flatnonzero(contested_adjacent)]] = True
            in_rounds = contested_nodes[node_key]
            fast = np.flatnonzero(~in_rounds)
            rounds = np.flatnonzero(in_rounds)
            if fast.size:
                order = fast[np.argsort(port_key[fast], kind="stable")]
                winners.append(self._grouped_rr(order, port_key[order]))
        else:
            rounds = None
            order = np.argsort(port_key, kind="stable")
            winners.append(self._grouped_rr(order, port_key[order]))
        if rounds is not None and rounds.size:
            # One stable sort up front; per-round compressions of the
            # sorted arrays preserve the (lane, node, port, ivc) order, so
            # no round re-sorts.
            conflict_key = self._g_ck_base[c_gi[rounds]] + port[rounds]
            perm = np.argsort(conflict_key, kind="stable")
            node_sorted = self._g_node_key[c_gi[rounds[perm]]]
            port_sorted = port_key[rounds[perm]]
            inport_sorted = inport_key[rounds[perm]]
            original_sorted = rounds[perm]
            alive = np.ones(len(perm), dtype=bool)
            used = self._used_inports
            while True:
                live = np.flatnonzero(alive)
                if live.size == 0:
                    break
                live_node = node_sorted[live]
                live_port = port_sorted[live]
                node_first = _boundaries(live_node)
                node_id = np.cumsum(node_first) - 1
                min_port = live_port[node_first][node_id]
                this_round = live_port == min_port
                selected = live[this_round]
                round_winners = self._grouped_rr(
                    selected, live_port[this_round]
                )
                winners.append(original_sorted[round_winners])
                alive[selected] = False
                used[inport_sorted[round_winners]] = True
                remaining = np.flatnonzero(alive)
                if remaining.size:
                    blocked = used[inport_sorted[remaining]]
                    if blocked.any():
                        alive[remaining[blocked]] = False
            used[inport_sorted] = False  # reset the scratch buffer
        win = winners[0] if len(winners) == 1 else np.concatenate(winners)

        w_gi = c_gi[win]
        w_fid = c_fid[win]
        w_port = port[win]

        # Pop the forwarded front flit of every winning input VC and
        # refresh the front cache from the new head slot.
        new_head = (self._buf_head[w_gi] + 1) % depth
        self._buf_head[w_gi] = new_head
        new_length = buf_len[w_gi] - 1
        buf_len[w_gi] = new_length
        self._buffered_total -= len(w_gi)
        emptied = new_length == 0
        self._front_ready[w_gi[emptied]] = _NEVER
        refill = ~emptied
        if refill.any():
            refill_gi = w_gi[refill]
            refill_slot = refill_gi * depth + new_head[refill]
            self._front_fid[refill_gi] = self._buf_fid[refill_slot]
            self._front_ready[refill_gi] = self._buf_ready[refill_slot]

        # Return credits upstream for the freed slots.
        from_chan = self._g_chan[w_gi] >= 0
        if from_chan.any():
            chan_gi = w_gi[from_chan]
            self._schedule(
                self._credit_wheel,
                self._g_chan[chan_gi],
                cycle,
                self._g_credit_idx[chan_gi],
            )

        ejected = w_port >= num_channels
        if ejected.any():
            self._eject(
                cycle,
                in_measurement,
                w_gi[ejected],
                w_fid[ejected],
                w_port[ejected] - num_channels,
            )

        forwarded = ~ejected
        if forwarded.any():
            f_gi = w_gi[forwarded]
            f_port = w_port[forwarded]
            f_vc = c_out_vc[win[forwarded]]
            f_fid = w_fid[forwarded]
            out_index = self._g_lane_cv[f_gi] + f_port * num_vcs + f_vc
            self._credits[out_index] -= 1
            self._flit_hops.data[f_fid] += 1
            target_gi = (
                self._g_lane[f_gi] * net.num_ivcs
                + net.chan_ivc_base[f_port]
                + f_vc
            )
            self._schedule(self._flit_wheel, f_port, cycle, target_gi, f_fid)
            tails = self._flit_tail.data[f_fid] == 1
            if tails.any():
                self._out_alloc[out_index[tails]] = -1
                ivc_out_ch[f_gi[tails]] = _UNROUTED
                # Release the headroom counters (one winner per channel per
                # cycle, so the scatters never collide).
                tail_chan = self._g_lane_c[f_gi[tails]] + f_port[tails]
                tail_escape = f_vc[tails] == 0
                self._escape_free[tail_chan[tail_escape]] = True
                self._adaptive_free[tail_chan[~tail_escape]] += 1

    def _schedule(self, wheel, channel, cycle, *arrays) -> None:
        """Append event arrays to wheel slots ``chan_latency[channel]`` ahead."""
        net = self._net
        wheel_size = net.wheel_size
        if net.uniform_latency:
            slot = (cycle + int(net.chan_latency[0])) % wheel_size
            wheel[slot].append(arrays[0] if len(arrays) == 1 else tuple(arrays))
            return
        latency = net.chan_latency[channel]
        for value in np.unique(latency):
            mask = latency == value
            slot = (cycle + int(value)) % wheel_size
            picked = [array[mask] for array in arrays]
            wheel[slot].append(picked[0] if len(arrays) == 1 else tuple(picked))

    # -------------------------------------------------------------- ejection
    def _eject(self, cycle, in_measurement, gis, fids, nodes) -> None:
        lanes_arr = self._g_lane[gis]
        # Flit throughput accounting (commutative counters, order-free).
        if self._num_lanes == 1:
            if in_measurement[0]:
                self._lanes[0]._accumulator.flits_delivered_measurement += len(fids)
        else:
            per_lane = np.bincount(lanes_arr, minlength=self._num_lanes)
            for lane_index in np.flatnonzero(per_lane):
                if in_measurement[lane_index]:
                    self._lanes[
                        lane_index
                    ]._accumulator.flits_delivered_measurement += int(
                        per_lane[lane_index]
                    )

        tails = self._flit_tail.data[fids] == 1
        if not tails.any():
            return
        t_gi = gis[tails]
        t_fid = fids[tails]
        t_lane = lanes_arr[tails]
        t_node = nodes[tails]
        # A router ejects at most one flit per cycle, so ascending
        # (lane, node) is the sequential per-cycle delivery order.
        order = np.argsort(t_lane * self._net.num_nodes + t_node)
        t_fid = t_fid[order]
        t_lane = t_lane[order]
        packet_id = self._flit_pkt.data[t_fid]
        created = self._pkt_created.data[packet_id]
        # Creation/injection stamps are lane-local, so latencies must be
        # computed against each flit's lane-local delivery cycle.
        local = cycle - self._offsets[t_lane]
        total_latency = local - created
        network_latency = local - self._pkt_injected.data[packet_id]
        hops = self._flit_hops.data[t_fid]
        measured = self._pkt_measured.data[packet_id] == 1
        escaped = self._pkt_escape.data[packet_id] == 1
        sizes = self._pkt_size.data[packet_id]

        lane_first = _boundaries(t_lane) if len(t_lane) > 1 else np.ones(1, dtype=bool)
        segment_starts = np.flatnonzero(lane_first)
        segment_ends = np.append(segment_starts[1:], len(t_lane))
        for seg_start, seg_end in zip(segment_starts, segment_ends):
            lane = self._lanes[t_lane[seg_start]]
            accumulator = lane._accumulator
            seg = slice(seg_start, seg_end)
            seg_measured = measured[seg]
            measured_count = int(seg_measured.sum())
            # int(): segment bounds are numpy scalars; the accumulator's
            # counters must stay Python ints (they end up in JSON payloads).
            accumulator.packets_delivered += int(seg_end - seg_start)
            if measured_count:
                accumulator.measured_delivered += measured_count
                accumulator.measured_latencies.extend(
                    total_latency[seg][seg_measured].tolist()
                )
                accumulator.measured_network_latencies.extend(
                    network_latency[seg][seg_measured].tolist()
                )
                accumulator.measured_hops.extend(hops[seg][seg_measured].tolist())
                accumulator.measured_escapes += int(
                    (escaped[seg] & seg_measured).sum()
                )
                lane._measured_in_flight -= measured_count
            if accumulator.phase_of_cycle is not None:
                phase_of_cycle = accumulator.phase_of_cycle
                table_len = len(phase_of_cycle)
                for position in range(seg_start, seg_end):
                    creation = int(created[position])
                    index = (
                        phase_of_cycle[creation] if 0 <= creation < table_len else -1
                    )
                    if index >= 0:
                        accumulator.phase_delivered[index] += 1
                        accumulator.phase_flits[index] += int(sizes[position])
                        accumulator.phase_latencies[index].append(
                            int(total_latency[position])
                        )
                        accumulator.phase_hops[index].append(int(hops[position]))
        self._ivc_out_ch[t_gi] = _UNROUTED

    # -------------------------------------------------------- lane recycling
    def _retire_lane(self, slot: int) -> None:
        """Freeze a finished lane and scrub its slot back to pristine.

        Pending wheel events targeting the lane are purged and its stale
        contributions (an undrained lane can end with queued packets and
        buffered flits) are subtracted from the idle counters, so the
        counters stay exact for the surviving lanes and a future
        :meth:`_arm` starts from the same state as a fresh kernel.
        """
        net = self._net
        cv = net.num_channels * net.num_vcs
        ivcs = slice(slot * net.num_ivcs, (slot + 1) * net.num_ivcs)
        nodes = slice(slot * net.num_nodes, (slot + 1) * net.num_nodes)
        chans = slice(slot * net.num_channels, (slot + 1) * net.num_channels)
        self._buffered_total -= int(self._buf_len[ivcs].sum())
        self._queued_total -= int(self._queue_len[nodes].sum())
        self._inflight_injections -= int((self._inj_cur[nodes] >= 0).sum())
        self._purge_lane_events(slot)
        self._buf_head[ivcs] = 0
        self._buf_len[ivcs] = 0
        self._ivc_out_ch[ivcs] = _UNROUTED
        self._ivc_out_vc[ivcs] = 0
        self._front_fid[ivcs] = 0
        self._front_ready[ivcs] = _NEVER
        self._gate[ivcs] = False
        self._out_alloc[slot * cv : (slot + 1) * cv] = -1
        self._credits[slot * cv : (slot + 1) * cv] = net.depth
        self._adaptive_free[chans] = net.num_vcs - 1
        self._escape_free[chans] = True
        self._rr[slot * net.num_ports : (slot + 1) * net.num_ports] = 0
        self._inj_queue[slot] = [[] for _ in range(net.num_nodes)]
        self._queue_len[nodes] = 0
        self._inj_cur[nodes] = -1
        self._inj_end[nodes] = 0
        self._inj_vc[nodes] = -1
        self._node_gate[nodes] = False

    def _purge_lane_events(self, slot: int) -> None:
        """Drop every pending wheel event that targets ``slot``'s lane."""
        net = self._net
        ivc_lo = slot * net.num_ivcs
        ivc_hi = ivc_lo + net.num_ivcs
        cv = net.num_channels * net.num_vcs
        credit_lo = slot * cv
        credit_hi = credit_lo + cv
        for wheel_slot in range(net.wheel_size):
            events = self._flit_wheel[wheel_slot]
            if events:
                kept = []
                for gi, fid in events:
                    mask = (gi < ivc_lo) | (gi >= ivc_hi)
                    if mask.all():
                        kept.append((gi, fid))
                    elif mask.any():
                        kept.append((gi[mask], fid[mask]))
                self._flit_wheel[wheel_slot] = kept
            credits = self._credit_wheel[wheel_slot]
            if credits:
                kept = []
                for index in credits:
                    mask = (index < credit_lo) | (index >= credit_hi)
                    if mask.all():
                        kept.append(index)
                    elif mask.any():
                        kept.append(index[mask])
                self._credit_wheel[wheel_slot] = kept

    def _arm(self, slot: int, engine: "Engine", cycle: int) -> None:
        """Start ``engine`` in retired slot ``slot`` at kernel cycle ``cycle``."""
        if engine.network is not self._network:
            raise ValueError("every batch lane must share the compiled network")
        net = self._net
        self._lanes[slot] = engine
        self._offsets[slot] = cycle
        self._offset_list[slot] = cycle
        self._bounds[slot] = engine._phase_bounds()
        self._trace_mode[slot] = engine.trace_mode
        self._gate[slot * net.num_ivcs : (slot + 1) * net.num_ivcs] = True
        self._node_gate[slot * net.num_nodes : (slot + 1) * net.num_nodes] = True
        if self._lane_unjumpable(engine):
            self._num_unjumpable_running += 1

    # ------------------------------------------------------ quiescent jumps
    def _quiescent_target(self, cycle: int, running: list[bool]) -> int | None:
        """Earliest kernel cycle at which a quiescent kernel can act again.

        Only meaningful when the idle counters are all zero and no running
        lane draws randomness per cycle: the next observable action is then
        a wheel delivery, a trace record's creation, or a phase boundary
        (``- 1`` because the finish check runs post-increment, so landing
        one cycle short reproduces the sequential ``lane._cycle``).
        """
        net = self._net
        target = None
        for delta in range(net.wheel_size):
            wheel_slot = (cycle + delta) % net.wheel_size
            if self._flit_wheel[wheel_slot] or self._credit_wheel[wheel_slot]:
                target = cycle + delta
                break
        for lane_index, lane in enumerate(self._lanes):
            if not running[lane_index]:
                continue
            offset = self._offset_list[lane_index]
            if self._trace_mode[lane_index] and not lane._trace_injector.exhausted:
                candidate = offset + lane._trace_injector.next_cycle
            elif lane._measured_in_flight == 0:
                candidate = offset + self._bounds[lane_index][1] - 1
            else:
                candidate = offset + self._bounds[lane_index][2] - 1
            if target is None or candidate < target:
                target = candidate
        return target

    # ------------------------------------------------------------------ run
    def run(
        self,
        pending: "list[Engine] | None" = None,
        on_finish=None,
    ) -> list[SimulationStats]:
        """Run every lane to completion, recycling freed slots from ``pending``.

        ``on_finish(engine, stats)`` is invoked as each lane finishes (its
        statistics are finalized immediately); it may return an iterable of
        new engines to append to the pending queue.  The returned list holds
        one :class:`SimulationStats` per engine in submission order (initial
        lanes first, then pending engines in arming order).
        """
        lanes = self._lanes
        num_lanes = self._num_lanes
        queue: list[Engine] = list(pending) if pending else []
        order = list(lanes)
        stats_by_id: dict[int, SimulationStats] = {}
        running = [True] * num_lanes
        free_slots: list[int] = []
        unfinished = num_lanes
        cycle = 0
        bounds = self._bounds
        trace_mode = self._trace_mode
        offsets = self._offset_list
        while unfinished or queue:
            if queue and free_slots:
                free_slots.sort()
                while queue and free_slots:
                    slot = free_slots.pop(0)
                    engine = queue.pop(0)
                    self._arm(slot, engine, cycle)
                    order.append(engine)
                    running[slot] = True
                    unfinished += 1
                self._all_running = unfinished == num_lanes
            if (
                self._num_unjumpable_running == 0
                and self._buffered_total == 0
                and self._queued_total == 0
                and self._inflight_injections == 0
            ):
                target = self._quiescent_target(cycle, running)
                if target is not None and target > cycle:
                    cycle = target
            in_measurement = [
                trace_mode[lane_index]
                or bounds[lane_index][0]
                <= cycle - offsets[lane_index]
                < bounds[lane_index][1]
                for lane_index in range(num_lanes)
            ]
            self._deliver_events(cycle)
            self._create_packets(cycle, in_measurement, running)
            if self._queued_total or self._inflight_injections:
                self._inject_flits(cycle)
            if self._buffered_total:
                self._route(cycle, in_measurement)
            cycle += 1
            for lane_index, lane in enumerate(lanes):
                if not running[lane_index]:
                    continue
                local = cycle - offsets[lane_index]
                _, measurement_end, hard_end = bounds[lane_index]
                if local >= measurement_end and lane._measured_in_flight == 0:
                    lane_drained = True
                    finished = True
                elif local >= hard_end:
                    lane_drained = lane._measured_in_flight == 0
                    finished = True
                else:
                    finished = False
                if finished:
                    running[lane_index] = False
                    lane._cycle = local
                    unfinished -= 1
                    self._all_running = False
                    if self._lane_unjumpable(lane):
                        self._num_unjumpable_running -= 1
                    self._retire_lane(lane_index)
                    free_slots.append(lane_index)
                    stats = lane._finalize(lane_drained)
                    stats_by_id[id(lane)] = stats
                    if on_finish is not None:
                        extra = on_finish(lane, stats)
                        if extra:
                            queue.extend(extra)
        return [stats_by_id[id(engine)] for engine in order]


def run_batched(
    engines: "list[Engine]",
    pending: "list[Engine] | tuple[Engine, ...]" = (),
    on_finish=None,
) -> list[SimulationStats]:
    """Run many lanes of one compiled network in a single fused kernel.

    Every engine must be a ``vec`` lane sharing the *same* prebuilt
    :class:`~repro.simulator.network.Network` instance; each lane keeps its
    own traffic generator, phase bounds and statistics accumulator, so the
    result list is bit-identical to running each engine alone (asserted by
    ``tests/unit/test_batch.py`` and the differential suite).

    ``engines`` fixes the kernel width; ``pending`` engines are armed into
    slots as lanes finish (lane recycling), and ``on_finish(engine, stats)``
    — called as each lane's statistics are finalized — may return further
    engines to append to the pending queue.  Results come back in
    submission order: ``engines`` first, then recycled engines in arming
    order.
    """
    engines = list(engines)
    pending = list(pending)
    if not engines:
        if not pending:
            return []
        engines = [pending.pop(0)]
    return _VecKernel(engines[0].network, engines).run(pending, on_finish)


class VecEngine(Engine):
    """Vectorized numpy kernel (see the module docstring).

    A single run is a batch of one; :func:`run_batched` fuses many runs of
    the same compiled network into one kernel invocation.
    """

    name = "vec"

    def run(self) -> SimulationStats:
        return _VecKernel(self.network, [self]).run()[0]


__all__ = ["VecEngine", "run_batched"]
