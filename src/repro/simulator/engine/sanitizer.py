"""The sanitizer engine: the reference kernel plus runtime invariant checks.

``engine="sanitizer"`` runs the exact :class:`ReferenceEngine` simulation —
same state, same scheduling, same statistics — and additionally audits the
simulated state at the end of every cycle.  The checks only *read* state, so
the statistics are bit-identical to ``reference`` by construction (enforced,
like every engine, by the golden and cross-engine differential tests); the
engine trades speed for a guarantee that a run which completes silently
never violated the kernel's structural invariants.

Checked every cycle (see ``docs/VERIFICATION.md``):

* **flit conservation** — every flit ever created is exactly one of: queued
  at its source, buffered in a router, in flight on a channel, or ejected;
* **credit conservation** — per ``(channel, VC)``, upstream credits held +
  credits in flight + flits in flight + flits buffered downstream equals the
  configured buffer depth (credit-based flow control never over- or
  under-counts buffer space);
* **buffer bounds** — no input VC ever holds more flits than its depth (the
  "no buffer overflow" face of credit conservation, checked independently);
* **allocation consistency / no occupied-VC overwrite** — every held output
  VC points back at exactly the input VC that holds it, and vice versa;
* **monotone packet timestamps** — at ejection,
  ``creation <= injection <= arrival`` for every packet.

The first violated invariant raises :class:`SanitizerError` with cycle,
router, channel and VC context, so the failure points at the cycle the state
corrupted — not at the statistics that later looked wrong.

The checks are intentionally exhaustive rather than incremental: the
sanitizer is a debugging/CI engine, not a performance engine.  Its per-cycle
cost is ``O(routers * ports * VCs + wheel)``.  For long campaigns the cost
can be amortised with ``audit_interval=N``
(:class:`~repro.simulator.simulation.SimulationConfig`): the full state
audit then runs every N-th cycle (plus the cheap per-ejection timestamp
checks, which stay on every flit).  Conservation violations persist in the
state until repaired, so a sampled audit still catches leaks — it only
reports them up to N-1 cycles late; and because the audit never writes
state, the statistics are bit-identical for every interval.
"""

from __future__ import annotations

from repro.simulator.engine.reference import ReferenceEngine
from repro.simulator.flit import Flit
from repro.simulator.router import EJECT_PORT, INJECT_PORT


class SanitizerError(AssertionError):
    """A runtime invariant of the simulation kernel was violated.

    Derives from :class:`AssertionError` because a violation means the
    *simulator* is wrong (or its inputs are corrupt), never that the user's
    configuration is invalid — configuration errors raise
    :class:`~repro.utils.validation.ValidationError` before a run starts.
    """


class SanitizerEngine(ReferenceEngine):
    """Reference kernel with per-cycle invariant auditing.

    Identical simulation semantics to :class:`ReferenceEngine` (it *is* the
    reference engine; the subclass only installs the end-of-cycle audit hook
    and accounting overrides that call straight through to the base class).
    """

    name = "sanitizer"

    def __init__(self, topology, config, network, trace=None) -> None:
        super().__init__(topology, config, network, trace=trace)
        self._cycle_end_hook = self._maybe_check_invariants
        self._audit_interval = config.audit_interval
        #: Total flits handed to source queues so far.
        self._audit_created_flits = 0
        #: Total flits ejected so far (warmup, measurement and drain alike).
        self._audit_ejected_flits = 0

    def _maybe_check_invariants(self) -> None:
        """Run the full audit on every ``audit_interval``-th cycle."""
        if self._cycle % self._audit_interval == 0:
            self._check_invariants()

    # ------------------------------------------------------- accounting taps
    def _create_packets(self, measured: bool) -> None:
        before = self._packet_counter
        super()._create_packets(measured)
        self._audit_created_flits += (
            self._packet_counter - before
        ) * self.config.packet_size_flits

    def _create_trace_packets(self) -> None:
        super()._create_trace_packets()
        # Trace packets carry per-record sizes; the injector counts the
        # flits it has released so far.
        self._audit_created_flits = self._trace_injector.released_flits

    def _eject(self, flit: Flit, cycle: int, in_measurement_window: bool) -> None:
        self._audit_ejected_flits += 1
        packet = flit.packet
        if flit.is_head and (
            packet.injection_cycle is None
            or packet.injection_cycle < packet.creation_cycle
        ):
            raise SanitizerError(
                f"[sanitizer] cycle {cycle}, router {self._channel_or_local(flit)}: "
                f"packet {packet.packet_id} ejected with injection cycle "
                f"{packet.injection_cycle} before creation cycle "
                f"{packet.creation_cycle}"
            )
        if flit.is_tail and packet.injection_cycle is not None and (
            cycle < packet.injection_cycle
        ):
            raise SanitizerError(
                f"[sanitizer] cycle {cycle}, router {self._channel_or_local(flit)}: "
                f"packet {packet.packet_id} arrives at {cycle}, before its "
                f"injection cycle {packet.injection_cycle} — timestamps are "
                "not monotone"
            )
        super()._eject(flit, cycle, in_measurement_window)

    @staticmethod
    def _channel_or_local(flit: Flit) -> int:
        return flit.destination

    # ----------------------------------------------------------- the audit
    def _check_invariants(self) -> None:
        """Audit the complete simulated state at the end of one cycle."""
        cycle = self._cycle
        config = self.config
        depth = config.buffer_depth_flits

        # In-flight counts per (channel, VC), one scan over both wheels.
        flits_in_flight: dict[tuple[int, int], int] = {}
        total_in_flight = 0
        for slot in self._flit_wheel:
            total_in_flight += len(slot)
            for _node, channel_id, vc, _flit in slot:
                key = (channel_id, vc)
                flits_in_flight[key] = flits_in_flight.get(key, 0) + 1
        credits_in_flight: dict[tuple[int, int], int] = {}
        for slot in self._credit_wheel:
            for _node, channel_id, vc in slot:
                key = (channel_id, vc)
                credits_in_flight[key] = credits_in_flight.get(key, 0) + 1

        total_buffered = 0
        for router in self.routers:
            node = router.node
            buffered_here = 0
            for key in router.input_keys:
                for vc_index, state in enumerate(router.inputs[key]):
                    occupancy = len(state.buffer)
                    buffered_here += occupancy
                    if occupancy > depth:
                        raise SanitizerError(
                            f"[sanitizer] cycle {cycle}, router {node}, input "
                            f"{self._port_name(key)}, VC {vc_index}: "
                            f"{occupancy} flits buffered but the depth is "
                            f"{depth} — upstream ignored back-pressure"
                        )
                    out_channel, out_vc = state.out_channel, state.out_vc
                    if (out_channel is None) != (out_vc is None):
                        raise SanitizerError(
                            f"[sanitizer] cycle {cycle}, router {node}, input "
                            f"{self._port_name(key)}, VC {vc_index}: half-"
                            f"allocated output (channel={out_channel}, "
                            f"vc={out_vc})"
                        )
                    if out_channel is not None and out_channel != EJECT_PORT:
                        holder = router.out_alloc[out_channel][out_vc]
                        if holder != (key, vc_index):
                            raise SanitizerError(
                                f"[sanitizer] cycle {cycle}, router {node}: "
                                f"input {self._port_name(key)}/VC {vc_index} "
                                f"believes it holds output channel "
                                f"{out_channel}/VC {out_vc}, but that VC is "
                                f"allocated to {holder} — occupied-VC "
                                "overwrite"
                            )
            if buffered_here != router.buffered_count:
                raise SanitizerError(
                    f"[sanitizer] cycle {cycle}, router {node}: buffered_count"
                    f"={router.buffered_count} but buffers hold "
                    f"{buffered_here} flits"
                )
            total_buffered += buffered_here

            # Reverse direction of allocation consistency: every held output
            # VC must point at an input VC that claims it.
            for channel_id, alloc in router.out_alloc.items():
                for vc, holder in enumerate(alloc):
                    if holder is None:
                        continue
                    holder_key, holder_vc = holder
                    state = router.inputs[holder_key][holder_vc]
                    if state.out_channel != channel_id or state.out_vc != vc:
                        raise SanitizerError(
                            f"[sanitizer] cycle {cycle}, router {node}: output "
                            f"channel {channel_id}/VC {vc} is allocated to "
                            f"input {self._port_name(holder_key)}/VC "
                            f"{holder_vc}, which holds "
                            f"(channel={state.out_channel}, vc={state.out_vc})"
                            " — dangling allocation"
                        )

        # Credit conservation, one equation per (channel, VC).
        routers = self.routers
        for channel in self.network.channels:
            channel_id = channel.channel_id
            upstream = routers[channel.source]
            downstream = routers[channel.destination]
            credit_column = upstream.credits[channel_id]
            input_column = downstream.inputs[channel_id]
            for vc in range(config.num_vcs):
                held = credit_column[vc]
                if held < 0:
                    raise SanitizerError(
                        f"[sanitizer] cycle {cycle}, router {channel.source}, "
                        f"channel {channel_id} "
                        f"({channel.source}->{channel.destination}), VC {vc}: "
                        f"negative credit count {held}"
                    )
                total = (
                    held
                    + credits_in_flight.get((channel_id, vc), 0)
                    + flits_in_flight.get((channel_id, vc), 0)
                    + len(input_column[vc].buffer)
                )
                if total != depth:
                    raise SanitizerError(
                        f"[sanitizer] cycle {cycle}, channel {channel_id} "
                        f"({channel.source}->{channel.destination}), VC {vc}: "
                        f"credits held ({held}) + credits in flight + flits "
                        f"in flight + flits buffered = {total}, expected the "
                        f"buffer depth {depth} — credits leaked or were "
                        "double-returned"
                    )

        # Flit conservation over the whole network.
        queued = 0
        for state in self._injection_states:
            queued += sum(packet.size_flits for packet in state.queue)
            queued += len(state.current_flits)
        accounted = queued + total_buffered + total_in_flight + self._audit_ejected_flits
        if accounted != self._audit_created_flits:
            raise SanitizerError(
                f"[sanitizer] cycle {cycle}: flit conservation violated — "
                f"created {self._audit_created_flits}, but queued ({queued}) "
                f"+ buffered ({total_buffered}) + in flight "
                f"({total_in_flight}) + ejected ({self._audit_ejected_flits}) "
                f"= {accounted}"
            )

    @staticmethod
    def _port_name(key: int) -> str:
        if key == INJECT_PORT:
            return "inject"
        if key == EJECT_PORT:
            return "eject"
        return f"channel {key}"


__all__ = ["SanitizerEngine", "SanitizerError"]
