"""The ``soa`` engine: the struct-of-arrays kernel.

Same cycle-level semantics as the ``reference`` engine — same allocation
order (ascending node, ascending input port, round-robin switch arbitration),
same event-wheel timing, same statistics accumulation — but all hot state
lives in **flat, preallocated, integer-indexed columns** instead of a graph
of ``Router``/``InputVC``/``Flit`` objects:

* every ``(channel, VC)`` input buffer is a fixed ``buffer_depth`` ring in
  one flat column pair (``buf_fid``/``buf_ready``), addressed by a compiled
  *input-VC id* (``channel_id * V + vc``; injection ports follow at
  ``C * V + node * V + vc``),
* credits and output-VC holds are flat ``C * V`` columns addressed by
  ``channel_id * V + vc``,
* per-flit and per-packet metadata are parallel append-only columns
  addressed by flit/packet id (no objects are ever allocated on the hot
  path),
* the event wheel carries ``(node, input_vc_id, flit_id)`` triples and bare
  credit indices instead of object tuples.

The compiled input-VC numbering makes each router's reference scan order
(ascending incoming channel id, then the injection port, VCs 0..V-1) equal
to *ascending input-VC id*, so the per-router set of occupied input VCs can
be kept as a small sorted list and iterated directly — the reference
engine's full scan over every VC of every active router (the bulk of its
cycle cost; see ``docs/PERFORMANCE.md``) disappears entirely.

Memory bound: the per-flit/per-packet metadata columns are append-only, so
one engine instance holds **O(total packets injected)** entries over a run
(a few list words per flit), where the reference engine frees its
``Flit``/``Packet`` objects after delivery and stays O(in-flight).  At the
scales this toolchain simulates (10^3..10^5 packets per run; a trace's own
record columns grow the same way) this is a few MB; recycling ejected flit
ids via a free list is the known remedy if far longer runs ever matter.

NumPy enters through the shared machinery where vectorization pays — the
Bernoulli injection draws and statistics finalization.  The columns
themselves are machine-word Python lists rather than ``ndarray`` objects:
the kernel's per-event work is inherently scalar (a handful of dependent
loads/stores per flit), and scalar ``ndarray`` indexing measures ~4x slower
than list indexing (see ``docs/PERFORMANCE.md``), which would forfeit the
layout's entire speedup.  The *layout* — parallel flat columns indexed by
compiled ids — is what matters, not the container type.

Bit-identity with the reference engine is enforced by the goldens in
``tests/unit/test_simulation_golden.py`` (run under both engines) and the
randomized differential tests in ``tests/unit/test_engine_equivalence.py``.
"""

from __future__ import annotations

from bisect import insort

from repro.simulator.engine.base import Engine
from repro.simulator.statistics import SimulationStats

#: ``ivc_out_ch`` sentinel: the input VC holds no output allocation.
_UNROUTED = -2
#: ``ivc_out_ch`` sentinel: the input VC is allocated to the local ejection port.
_EJECT = -1


class SoAEngine(Engine):
    """Struct-of-arrays kernel (see the module docstring for the layout)."""

    name = "soa"

    def __init__(self, topology, config, network, trace=None) -> None:
        super().__init__(topology, config, network, trace=trace)
        net_config = network.config
        num_vcs = net_config.num_vcs
        depth = net_config.buffer_depth_flits
        num_nodes = network.num_nodes
        num_channels = len(network.channels)
        self._num_vcs = num_vcs
        self._depth = depth
        self._pipeline = net_config.router_pipeline_cycles

        # ------------------------------------------------ compiled structure
        # Static per-channel columns, compiled once at build time.
        self._chan_latency = [channel.latency_cycles for channel in network.channels]
        self._chan_dest = [channel.destination for channel in network.channels]
        # Credit-index -> upstream node, for the wake-on-credit path (one
        # list read instead of a divide + channel lookup per credit event).
        self._credit_src = [
            channel.source for channel in network.channels for _ in range(num_vcs)
        ]
        # Destination -> outgoing-channel-id route tables (shared with the
        # network's compiled cache; identical tables keep routing decisions
        # identical between engines by construction).
        self._minimal, self._escape = network.compiled_routes()

        #: First injection-port input-VC id; channel input VCs occupy
        #: ``[0, C * V)``, injection VCs ``[C * V, (C + N) * V)``.
        self._inject_base = num_channels * num_vcs
        num_ivcs = (num_channels + num_nodes) * num_vcs
        #: Input key per input VC: the incoming channel id, or -1 (injection).
        self._ivc_key = [
            channel for channel in range(num_channels) for _ in range(num_vcs)
        ] + [-1] * (num_nodes * num_vcs)

        #: Per node: outgoing channel ids in switch-port order (ascending).
        self._node_out_channels = [
            sorted(network.outputs[node].values()) for node in range(num_nodes)
        ]
        #: Bucket key of the ejection pseudo-port — larger than any channel
        #: id, so ``sorted(buckets)`` visits it last, like the reference scan.
        self._eject_key = num_channels

        # ------------------------------------------------- mutable hot state
        # Input-VC buffer rings: flat (num_ivcs x depth) columns.
        self._buf_fid = [0] * (num_ivcs * depth)
        self._buf_ready = [0] * (num_ivcs * depth)
        self._buf_head = [0] * num_ivcs
        self._buf_len = [0] * num_ivcs
        # Output allocation per input VC (head flit's routing decision).
        self._ivc_out_ch = [_UNROUTED] * num_ivcs
        self._ivc_out_vc = [0] * num_ivcs
        # Output-VC holds and credits: flat (C x V) columns.
        self._out_alloc = [-1] * (num_channels * num_vcs)
        self._credits = [depth] * (num_channels * num_vcs)
        # Round-robin switch pointers: one per channel, then one ejection
        # pointer per node.
        self._rr = [0] * (num_channels + num_nodes)
        #: Per node: sorted list of occupied input-VC ids.  Ascending id ==
        #: the reference scan order, see the module docstring.
        self._occ: list[list[int]] = [[] for _ in range(num_nodes)]
        self._buffered = [0] * num_nodes

        # Event wheel (slot = cycle % wheel size, one extra slot keeps
        # "now + max latency" distinct from "now").
        self._wheel_size = network.max_latency_cycles + 1
        self._flit_wheel: list[list[tuple[int, int, int]]] = [
            [] for _ in range(self._wheel_size)
        ]
        self._credit_wheel: list[list[int]] = [[] for _ in range(self._wheel_size)]
        # Pipeline-wake wheel: a router whose step produced no switch
        # candidate is quiescent — stepping it again can observably change
        # nothing until a flit arrives, a credit for one of its output
        # channels arrives, or a buffered front flit leaves the router
        # pipeline.  The first two wake it through the event plumbing; this
        # wheel handles the third (ready times are at most
        # ``router_pipeline_cycles`` ahead).
        self._wake_size = net_config.router_pipeline_cycles + 1
        self._wake_wheel: list[list[int]] = [[] for _ in range(self._wake_size)]

        #: Routers currently holding buffered flits *and* possibly able to
        #: act (quiescent routers are parked until an event wakes them —
        #: skipping their steps is observationally identical, see run()).
        self._active: set[int] = set()
        #: Tiles with queued packets or a partially injected packet.
        self._pending_injection: set[int] = set()

        # Per-tile source queues (packet ids) and the packet being injected,
        # represented as a [first flit id, one-past-last flit id) window.
        self._inj_queue: list[list[int]] = [[] for _ in range(num_nodes)]
        self._inj_cur = [-1] * num_nodes
        self._inj_end = [0] * num_nodes
        self._inj_vc = [-1] * num_nodes

        # Per-packet metadata columns, appended at creation (packet id =
        # column index, identical to the reference packet_id counter).
        self._pkt_dst: list[int] = []
        self._pkt_size: list[int] = []
        self._pkt_created: list[int] = []
        self._pkt_injected: list[int] = []
        self._pkt_measured: list[bool] = []
        self._pkt_escape: list[bool] = []

        # Per-flit metadata columns, appended at segmentation time (when a
        # packet leaves its source queue); a packet's flits are contiguous.
        self._flit_pkt: list[int] = []
        self._flit_dest: list[int] = []
        self._flit_head: list[bool] = []
        self._flit_tail: list[bool] = []
        self._flit_escape: list[bool] = []
        self._flit_hops: list[int] = []

    # ------------------------------------------------------------- injection
    def _create_packet(self, source: int, destination: int, size: int, measured: bool) -> None:
        self._pkt_dst.append(destination)
        self._pkt_size.append(size)
        self._pkt_created.append(self._cycle)
        self._pkt_injected.append(-1)
        self._pkt_measured.append(measured)
        self._pkt_escape.append(False)
        self._packet_counter += 1
        self._accumulator.packets_created += 1
        if measured:
            self._packets_measured += 1
            self._measured_in_flight += 1
        self._inj_queue[source].append(self._packet_counter - 1)
        self._pending_injection.add(source)

    def _create_packets(self, measured: bool) -> None:
        for source, destination in self.injection.packets_for_cycle(self._cycle):
            self._create_packet(
                source, destination, self.config.packet_size_flits, measured
            )

    def _create_trace_packets(self) -> None:
        """Trace-mode packet creation: replay this cycle's recorded packets."""
        for source, destination, size in self._trace_injector.packets_for_cycle(
            self._cycle
        ):
            self._create_packet(source, destination, size, True)

    def _segment_packet(self, packet_id: int) -> int:
        """Append the packet's flit columns; returns the first flit id."""
        first = len(self._flit_pkt)
        size = self._pkt_size[packet_id]
        destination = self._pkt_dst[packet_id]
        last = size - 1
        for sequence in range(size):
            self._flit_pkt.append(packet_id)
            self._flit_dest.append(destination)
            self._flit_head.append(sequence == 0)
            self._flit_tail.append(sequence == last)
            self._flit_escape.append(False)
            self._flit_hops.append(0)
        return first

    def _inject_flits(self) -> None:
        pending = self._pending_injection
        if not pending:
            return
        cycle = self._cycle
        num_vcs = self._num_vcs
        depth = self._depth
        inject_base = self._inject_base
        buf_len = self._buf_len
        buf_head = self._buf_head
        buf_fid = self._buf_fid
        buf_ready = self._buf_ready
        ivc_out_ch = self._ivc_out_ch
        inj_queue = self._inj_queue
        inj_cur = self._inj_cur
        inj_end = self._inj_end
        inj_vc = self._inj_vc
        occ = self._occ
        buffered = self._buffered
        active = self._active
        ready = cycle + self._pipeline
        for node in sorted(pending):
            current = inj_cur[node]
            queue = inj_queue[node]
            if current < 0 and queue:
                # Find an idle injection VC: no buffered flits, no allocation.
                base_ivc = inject_base + node * num_vcs
                for vc in range(num_vcs):
                    ivc = base_ivc + vc
                    if buf_len[ivc] == 0 and ivc_out_ch[ivc] == _UNROUTED:
                        packet_id = queue.pop(0)
                        current = self._segment_packet(packet_id)
                        inj_cur[node] = current
                        inj_end[node] = current + self._pkt_size[packet_id]
                        inj_vc[node] = vc
                        break
            if current >= 0:
                ivc = inject_base + node * num_vcs + inj_vc[node]
                length = buf_len[ivc]
                if length < depth:
                    if self._flit_head[current]:
                        self._pkt_injected[self._flit_pkt[current]] = cycle
                    slot = ivc * depth + (buf_head[ivc] + length) % depth
                    buf_fid[slot] = current
                    buf_ready[slot] = ready
                    if length == 0:
                        insort(occ[node], ivc)
                    buf_len[ivc] = length + 1
                    buffered[node] += 1
                    active.add(node)
                    current += 1
                    if current >= inj_end[node]:
                        inj_cur[node] = -1
                        inj_vc[node] = -1
                    else:
                        inj_cur[node] = current
            if inj_cur[node] < 0 and not inj_queue[node]:
                pending.discard(node)

    # ----------------------------------------------------------- event plumbing
    def _deliver_events(self) -> None:
        cycle = self._cycle
        slot = cycle % self._wheel_size
        flit_events = self._flit_wheel[slot]
        if flit_events:
            depth = self._depth
            buf_len = self._buf_len
            buf_head = self._buf_head
            buf_fid = self._buf_fid
            buf_ready = self._buf_ready
            occ = self._occ
            buffered = self._buffered
            active = self._active
            ready = cycle + self._pipeline
            for node, ivc, fid in flit_events:
                length = buf_len[ivc]
                index = ivc * depth + (buf_head[ivc] + length) % depth
                buf_fid[index] = fid
                buf_ready[index] = ready
                if length == 0:
                    insort(occ[node], ivc)
                buf_len[ivc] = length + 1
                buffered[node] += 1
                active.add(node)
            self._flit_wheel[slot] = []
        credit_events = self._credit_wheel[slot]
        if credit_events:
            credits = self._credits
            credit_src = self._credit_src
            buffered = self._buffered
            active = self._active
            for index in credit_events:
                credits[index] += 1
                # A credit can unblock the upstream router; wake it if it
                # holds flits (a no-op when it is already active).
                source = credit_src[index]
                if buffered[source]:
                    active.add(source)
            self._credit_wheel[slot] = []
        wake_events = self._wake_wheel[cycle % self._wake_size]
        if wake_events:
            buffered = self._buffered
            active = self._active
            for node in wake_events:
                if buffered[node]:
                    active.add(node)
            self._wake_wheel[cycle % self._wake_size] = []

    # -------------------------------------------------------------- ejection
    def _eject(self, fid: int, cycle: int, in_measurement_window: bool) -> None:
        if self._flit_tail[fid]:
            packet_id = self._flit_pkt[fid]
            created = self._pkt_created[packet_id]
            measured = self._pkt_measured[packet_id]
            self._accumulator.record_delivery_values(
                creation_cycle=created,
                size_flits=self._pkt_size[packet_id],
                total_latency=cycle - created,
                network_latency=cycle - self._pkt_injected[packet_id],
                hops=self._flit_hops[fid],
                is_measured=measured,
                used_escape=self._pkt_escape[packet_id],
            )
            if measured:
                self._measured_in_flight -= 1
        if in_measurement_window:
            self._accumulator.flits_delivered_measurement += 1

    # ------------------------------------------------------------------ run
    def run(self) -> SimulationStats:
        """Run warmup, measurement and drain and return the statistics."""
        trace_mode = self.trace_mode
        warmup_end, measurement_end, hard_end = self._phase_bounds()

        # Hot-loop locals: every column the stepping loop touches.
        num_vcs = self._num_vcs
        depth = self._depth
        wheel_size = self._wheel_size
        wake_wheel = self._wake_wheel
        wake_size = self._wake_size
        eject_key = self._eject_key
        inject_start = self._inject_base  # first injection ivc == C * V
        rr_eject_base = inject_start // num_vcs  # == num_channels
        has_adaptive = num_vcs > 1
        buf_fid = self._buf_fid
        buf_ready = self._buf_ready
        buf_head = self._buf_head
        buf_len = self._buf_len
        ivc_out_ch = self._ivc_out_ch
        ivc_out_vc = self._ivc_out_vc
        ivc_key = self._ivc_key
        out_alloc = self._out_alloc
        credits = self._credits
        rr = self._rr
        occ = self._occ
        buffered = self._buffered
        active = self._active
        minimal = self._minimal
        escape = self._escape
        chan_latency = self._chan_latency
        chan_dest = self._chan_dest
        flit_wheel = self._flit_wheel
        credit_wheel = self._credit_wheel
        flit_pkt = self._flit_pkt
        flit_dest = self._flit_dest
        flit_head = self._flit_head
        flit_tail = self._flit_tail
        flit_escape = self._flit_escape
        flit_hops = self._flit_hops
        pkt_escape = self._pkt_escape
        eject = self._eject

        drained = True
        while True:
            cycle = self._cycle
            in_measurement = (
                True if trace_mode else warmup_end <= cycle < measurement_end
            )

            self._deliver_events()
            if trace_mode:
                self._create_trace_packets()
            else:
                self._create_packets(measured=in_measurement)
            self._inject_flits()

            if active:
                for node in sorted(active):
                    # Phase 1 — VC allocation + switch candidacy: one pass
                    # over the node's occupied input VCs (ascending id ==
                    # reference scan order), bucketing ready candidates
                    # under their output port.  The overwhelmingly common
                    # case at sub-saturation loads is a *single* candidate,
                    # so the bucket dict is only materialised once a second
                    # candidate shows up.
                    buckets: dict[int, list[int]] | None = None
                    single_key = _UNROUTED  # no candidate yet
                    single_ivc = -1
                    min_next_ready = 0  # earliest pipeline-unready front
                    for ivc in occ[node]:
                        head = buf_head[ivc]
                        index = ivc * depth + head
                        ready_at = buf_ready[index]
                        if ready_at > cycle:
                            if min_next_ready == 0 or ready_at < min_next_ready:
                                min_next_ready = ready_at
                            continue
                        fid = buf_fid[index]
                        out_ch = ivc_out_ch[ivc]
                        if out_ch == _UNROUTED:
                            if not flit_head[fid]:
                                # Body flits inherit the head's allocation;
                                # an unallocated front body flit never routes.
                                continue
                            destination = flit_dest[fid]
                            if destination == node:
                                ivc_out_ch[ivc] = out_ch = _EJECT
                                ivc_out_vc[ivc] = 0
                            else:
                                if has_adaptive and not flit_escape[fid]:
                                    channel = minimal[node][destination]
                                    alloc_base = channel * num_vcs
                                    for vc in range(1, num_vcs):
                                        if out_alloc[alloc_base + vc] < 0:
                                            out_alloc[alloc_base + vc] = ivc
                                            ivc_out_ch[ivc] = out_ch = channel
                                            ivc_out_vc[ivc] = vc
                                            break
                                if out_ch == _UNROUTED:
                                    channel = escape[node][destination]
                                    alloc_base = channel * num_vcs
                                    if out_alloc[alloc_base] < 0:
                                        out_alloc[alloc_base] = ivc
                                        ivc_out_ch[ivc] = out_ch = channel
                                        ivc_out_vc[ivc] = 0
                                        flit_escape[fid] = True
                                        pkt_escape[flit_pkt[fid]] = True
                                    else:
                                        continue  # no output VC free this cycle
                        if out_ch >= 0:
                            if credits[out_ch * num_vcs + ivc_out_vc[ivc]] <= 0:
                                continue  # no downstream buffer space
                            bucket_key = out_ch
                        else:
                            bucket_key = eject_key
                        if buckets is None:
                            if single_ivc < 0:
                                single_key = bucket_key
                                single_ivc = ivc
                            else:
                                buckets = {single_key: [single_ivc]}
                                bucket = buckets.get(bucket_key)
                                if bucket is None:
                                    buckets[bucket_key] = [ivc]
                                else:
                                    bucket.append(ivc)
                        else:
                            bucket = buckets.get(bucket_key)
                            if bucket is None:
                                buckets[bucket_key] = [ivc]
                            else:
                                bucket.append(ivc)

                    # Phase 2 — switch allocation + traversal: per output
                    # port (ascending channel id, ejection last), pick the
                    # round-robin winner among candidates whose input port
                    # has not yet forwarded a flit this cycle.
                    if buckets is None:
                        if single_ivc < 0:
                            # No switch candidate: the router is quiescent.
                            # Every front flit is pipeline-unready,
                            # credit-blocked, or output-VC-blocked, and none
                            # of those can clear without an external event
                            # (flit arrival, credit arrival) or, for the
                            # pipeline case, the wake scheduled here — so
                            # parking the router skips only provably no-op
                            # steps and the statistics stay bit-identical.
                            active.discard(node)
                            if min_next_ready:
                                wake_wheel[min_next_ready % wake_size].append(node)
                            continue
                        # Single candidate: it wins its port outright
                        # (pointer % 1 == 0); the pointer still advances,
                        # exactly like the reference arbitration.
                        winners = ((single_key, single_ivc),)
                        rr_index = (
                            rr_eject_base + node
                            if single_key == eject_key
                            else single_key
                        )
                        rr[rr_index] += 1
                    else:
                        winners = []
                        used_inputs: set[int] | None = None
                        for port in sorted(buckets):
                            bucket = buckets[port]
                            if used_inputs:
                                candidates = [
                                    i for i in bucket if ivc_key[i] not in used_inputs
                                ]
                                if not candidates:
                                    continue
                            else:
                                candidates = bucket
                            if port == eject_key:
                                rr_index = rr_eject_base + node
                            else:
                                rr_index = port
                            pointer = rr[rr_index]
                            rr[rr_index] = pointer + 1
                            winner = candidates[pointer % len(candidates)]
                            if used_inputs is None:
                                used_inputs = {ivc_key[winner]}
                            else:
                                used_inputs.add(ivc_key[winner])
                            winners.append((port, winner))

                    for port, winner in winners:
                        key = ivc_key[winner]
                        head = buf_head[winner]
                        fid = buf_fid[winner * depth + head]
                        buf_head[winner] = (head + 1) % depth
                        length = buf_len[winner] - 1
                        buf_len[winner] = length
                        buffered[node] -= 1
                        if length == 0:
                            occ[node].remove(winner)
                        if key >= 0:
                            # Return a credit upstream for the freed slot.
                            credit_wheel[
                                (cycle + chan_latency[key]) % wheel_size
                            ].append(key * num_vcs + winner % num_vcs)
                        if port == eject_key:
                            eject(fid, cycle, in_measurement)
                            if flit_tail[fid]:
                                ivc_out_ch[winner] = _UNROUTED
                            continue
                        out_vc = ivc_out_vc[winner]
                        credits[port * num_vcs + out_vc] -= 1
                        flit_hops[fid] += 1
                        flit_wheel[
                            (cycle + chan_latency[port]) % wheel_size
                        ].append((chan_dest[port], port * num_vcs + out_vc, fid))
                        if flit_tail[fid]:
                            out_alloc[port * num_vcs + out_vc] = -1
                            ivc_out_ch[winner] = _UNROUTED
                    if not buffered[node]:
                        active.discard(node)

            self._cycle = cycle + 1
            if self._cycle >= measurement_end and self._measured_in_flight == 0:
                break
            if self._cycle >= hard_end:
                drained = self._measured_in_flight == 0
                break

        return self._finalize(drained)


__all__ = ["SoAEngine"]
