"""The reference engine: the object-graph kernel.

This is the original cycle-based kernel — :class:`~repro.simulator.router.Router`
and :class:`~repro.simulator.flit.Flit` objects wired together per node — kept
behaviour-for-behaviour (and therefore bit-for-bit) identical to the kernel
that produced the goldens in ``tests/unit/test_simulation_golden.py``.  It is
the semantic ground truth the ``soa`` engine is differentially tested against.

Scheduling
----------
The kernel is *activity-driven* (the scheduling style BookSim2-class
simulators use): instead of scanning every router every cycle, the engine
maintains an **active set** of routers that hold buffered flits and a
**pending set** of tiles with queued or partially injected packets.  Routers
enter the active set when a flit is delivered to them (from a channel or the
injection port) and leave it when their buffers drain; a router outside the
active set provably has nothing to do (credits arriving at an empty router
change no observable state until its next flit arrives).  Both sets are
iterated in ascending node order, so results are **bit-identical** to the
dense per-cycle scan.

Flits and credits in flight on channels are kept in a *slotted event wheel*
sized by the maximum link latency: a link with an ``L``-cycle latency simply
schedules its deliveries ``L`` slots ahead on the wheel — this is how the
physical model's per-link latency estimates enter the performance prediction
(Figure 3 of the paper).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.simulator.engine.base import Engine
from repro.simulator.flit import Flit, Packet, packet_to_flits
from repro.simulator.router import INJECT_PORT, Router
from repro.simulator.statistics import SimulationStats


@dataclass
class _InjectionState:
    """Per-tile source queue and the packet currently being injected."""

    queue: list[Packet] = field(default_factory=list)
    current_flits: list[Flit] = field(default_factory=list)
    current_vc: int | None = None

    @property
    def idle(self) -> bool:
        return not self.queue and not self.current_flits


class ReferenceEngine(Engine):
    """Object-graph kernel: one :class:`Router` object per node.

    Every piece of simulated state lives on the object that owns it — input
    VCs hold :class:`~collections.deque` buffers of flit objects, routers
    hold credit and allocation dictionaries.  Easy to read and to instrument,
    but the per-object attribute traffic is what the ``soa`` engine's flat
    arrays eliminate (see ``docs/PERFORMANCE.md`` for measurements).
    """

    name = "reference"

    def __init__(self, topology, config, network, trace=None) -> None:
        super().__init__(topology, config, network, trace=trace)
        num_nodes = network.num_nodes
        self.routers = [Router(node, network) for node in range(num_nodes)]

        # Channel attributes flattened into arrays indexed by channel id, so
        # event scheduling does one list index instead of an object traversal.
        channels = network.channels
        self._channel_latency = [channel.latency_cycles for channel in channels]
        self._channel_dest = [channel.destination for channel in channels]
        self._channel_src = [channel.source for channel in channels]

        # The event wheel: slot (cycle % wheel size) holds the deliveries due
        # in that cycle.  One extra slot keeps "now + max latency" distinct
        # from "now".
        self._wheel_size = network.max_latency_cycles + 1
        self._flit_wheel: list[list[tuple[int, int, int, Flit]]] = [
            [] for _ in range(self._wheel_size)
        ]
        self._credit_wheel: list[list[tuple[int, int, int]]] = [
            [] for _ in range(self._wheel_size)
        ]

        self._injection_states = [_InjectionState() for _ in range(num_nodes)]
        #: Routers currently holding buffered flits (the only ones stepped).
        self._active: set[int] = set()
        #: Tiles with queued packets or a partially injected packet.
        self._pending_injection: set[int] = set()
        #: Optional end-of-cycle callback: ``None`` here; the sanitizer
        #: engine installs its invariant checker (one ``is None`` test per
        #: cycle keeps the reference hot loop unchanged otherwise).
        self._cycle_end_hook = None

    # ----------------------------------------------------------- event plumbing
    def _schedule_flit(self, channel_id: int, vc: int, flit: Flit) -> None:
        latency = self._channel_latency[channel_id]
        slot = (self._cycle + latency) % self._wheel_size
        self._flit_wheel[slot].append((self._channel_dest[channel_id], channel_id, vc, flit))

    def _schedule_credit(self, channel_id: int, vc: int) -> None:
        latency = self._channel_latency[channel_id]
        slot = (self._cycle + latency) % self._wheel_size
        self._credit_wheel[slot].append((self._channel_src[channel_id], channel_id, vc))

    def _deliver_events(self) -> None:
        slot = self._cycle % self._wheel_size
        flit_events = self._flit_wheel[slot]
        if flit_events:
            routers = self.routers
            active = self._active
            cycle = self._cycle
            for node, channel_id, vc, flit in flit_events:
                routers[node].receive_flit(channel_id, vc, flit, cycle)
                active.add(node)
            self._flit_wheel[slot] = []
        credit_events = self._credit_wheel[slot]
        if credit_events:
            routers = self.routers
            for node, channel_id, vc in credit_events:
                routers[node].receive_credit(channel_id, vc)
            self._credit_wheel[slot] = []

    # ------------------------------------------------------------- injection
    def _create_packets(self, measured: bool) -> None:
        for source, destination in self.injection.packets_for_cycle(self._cycle):
            packet = Packet(
                packet_id=self._packet_counter,
                source=source,
                destination=destination,
                size_flits=self.config.packet_size_flits,
                creation_cycle=self._cycle,
                is_measured=measured,
            )
            self._packet_counter += 1
            self._accumulator.packets_created += 1
            if measured:
                self._packets_measured += 1
                self._measured_in_flight += 1
            self._injection_states[source].queue.append(packet)
            self._pending_injection.add(source)

    def _create_trace_packets(self) -> None:
        """Trace-mode packet creation: replay this cycle's recorded packets."""
        if self._trace_injector is None:
            # Not an assert: asserts vanish under ``python -O`` and this
            # guards the dispatch invariant of the run loop itself.
            raise RuntimeError(
                "trace-mode packet creation invoked without a trace injector"
            )
        for source, destination, size in self._trace_injector.packets_for_cycle(
            self._cycle
        ):
            packet = Packet(
                packet_id=self._packet_counter,
                source=source,
                destination=destination,
                size_flits=size,
                creation_cycle=self._cycle,
                is_measured=True,
            )
            self._packet_counter += 1
            self._accumulator.packets_created += 1
            self._packets_measured += 1
            self._measured_in_flight += 1
            self._injection_states[source].queue.append(packet)
            self._pending_injection.add(source)

    def _inject_flits(self) -> None:
        if not self._pending_injection:
            return
        states = self._injection_states
        active = self._active
        cycle = self._cycle
        for node in sorted(self._pending_injection):
            state = states[node]
            router = self.routers[node]
            if not state.current_flits and state.queue:
                vc = router.free_injection_vc()
                if vc is not None:
                    packet = state.queue.pop(0)
                    state.current_flits = packet_to_flits(packet)
                    state.current_vc = vc
            if state.current_flits and state.current_vc is not None:
                if router.injection_space(state.current_vc):
                    flit = state.current_flits.pop(0)
                    if flit.is_head:
                        flit.packet.injection_cycle = cycle
                    router.receive_flit(INJECT_PORT, state.current_vc, flit, cycle)
                    active.add(node)
                    if flit.is_tail:
                        state.current_vc = None
            if state.idle:
                self._pending_injection.discard(node)

    # -------------------------------------------------------------- ejection
    def _eject_measured(self, flit: Flit, cycle: int) -> None:
        """Ejection callback for cycles inside the measurement window."""
        self._eject(flit, cycle, True)

    def _eject_unmeasured(self, flit: Flit, cycle: int) -> None:
        """Ejection callback for warmup and drain cycles."""
        self._eject(flit, cycle, False)

    def _eject(self, flit: Flit, cycle: int, in_measurement_window: bool) -> None:
        if flit.is_tail:
            packet = flit.packet
            packet.arrival_cycle = cycle
            self._accumulator.record_delivery(
                packet, flit.hops, packet.used_escape, in_measurement_window
            )
            if packet.is_measured:
                self._measured_in_flight -= 1
        if in_measurement_window:
            self._accumulator.flits_delivered_measurement += 1

    # ------------------------------------------------------------------ run
    def run(self) -> SimulationStats:
        """Run warmup, measurement and drain and return the statistics."""
        trace_mode = self.trace_mode
        warmup_end, measurement_end, hard_end = self._phase_bounds()

        routers = self.routers
        active = self._active
        schedule_flit = self._schedule_flit
        schedule_credit = self._schedule_credit
        cycle_end_hook = self._cycle_end_hook

        drained = True
        while True:
            # Trace mode measures the whole run: every replayed packet is
            # measured, and flits arriving during the drain still count
            # towards the accepted load (a fully drained replay accepts
            # exactly what the trace offered).
            in_measurement = (
                True if trace_mode else warmup_end <= self._cycle < measurement_end
            )
            eject = self._eject_measured if in_measurement else self._eject_unmeasured

            self._deliver_events()
            if trace_mode:
                self._create_trace_packets()
            else:
                self._create_packets(measured=in_measurement)
            self._inject_flits()

            if active:
                for node in sorted(active):
                    router = routers[node]
                    router.step(self._cycle, schedule_flit, schedule_credit, eject)
                    if not router.buffered_count:
                        active.discard(node)

            if cycle_end_hook is not None:
                cycle_end_hook()
            self._cycle += 1
            if self._cycle >= measurement_end and self._measured_in_flight == 0:
                break
            if self._cycle >= hard_end:
                drained = self._measured_in_flight == 0
                break

        return self._finalize(drained)


__all__ = ["ReferenceEngine"]
