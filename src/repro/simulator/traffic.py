"""Synthetic traffic patterns and the injection process.

The paper's evaluation uses a *random uniform* traffic pattern (Figure 6
caption); the other classic synthetic patterns (transpose, bit-complement,
tornado, nearest-neighbour, hotspot) are provided as well because they are the
standard BookSim2 workloads and are used by the extended benchmarks and tests.

A traffic pattern maps a source tile to a destination tile (possibly
randomly); the injection process is Bernoulli: each tile independently starts
a new packet in each cycle with probability ``injection_rate / packet_size``
so that the offered load equals ``injection_rate`` flits per tile per cycle.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from typing import Callable

import numpy as np

from repro.topologies.base import Topology
from repro.utils.rng import make_rng
from repro.utils.validation import ValidationError, check_in_range, check_type


class TrafficPattern(ABC):
    """Mapping from source tiles to destination tiles."""

    #: Short pattern name, identical to the pattern's key in
    #: :data:`TRAFFIC_FACTORIES` (asserted by the registry tests).
    name: str = ""

    def __init__(self, num_tiles: int) -> None:
        check_type("num_tiles", num_tiles, int)
        if num_tiles < 2:
            raise ValidationError("traffic needs at least 2 tiles")
        self.num_tiles = num_tiles

    @abstractmethod
    def destination(self, source: int, rng: np.random.Generator) -> int:
        """Return the destination tile for a packet created at ``source``."""


class UniformRandomTraffic(TrafficPattern):
    """Every tile sends to a uniformly random other tile (the paper's pattern)."""

    name = "uniform"

    def destination(self, source: int, rng: np.random.Generator) -> int:
        destination = int(rng.integers(self.num_tiles - 1))
        if destination >= source:
            destination += 1
        return destination


class TransposeTraffic(TrafficPattern):
    """Tile ``(r, c)`` sends to tile ``(c, r)``; requires a square grid."""

    name = "transpose"

    def __init__(self, num_tiles: int, rows: int, cols: int) -> None:
        super().__init__(num_tiles)
        if rows != cols:
            raise ValidationError("transpose traffic requires a square tile grid")
        self.rows = rows
        self.cols = cols

    def destination(self, source: int, rng: np.random.Generator) -> int:
        row, col = divmod(source, self.cols)
        destination = col * self.cols + row
        if destination == source:
            # Diagonal tiles send uniformly at random instead of to themselves.
            return UniformRandomTraffic(self.num_tiles).destination(source, rng)
        return destination


class BitComplementTraffic(TrafficPattern):
    """Tile ``i`` sends to tile ``~i`` (bit complement within the index range)."""

    name = "bit_complement"

    def destination(self, source: int, rng: np.random.Generator) -> int:
        bits = max(1, (self.num_tiles - 1).bit_length())
        destination = (~source) & ((1 << bits) - 1)
        destination %= self.num_tiles
        if destination == source:
            return UniformRandomTraffic(self.num_tiles).destination(source, rng)
        return destination


class TornadoTraffic(TrafficPattern):
    """Tile ``i`` sends to tile ``(i + N/2 - 1) mod N`` (adversarial for rings/tori)."""

    name = "tornado"

    def destination(self, source: int, rng: np.random.Generator) -> int:
        offset = max(1, self.num_tiles // 2 - 1)
        destination = (source + offset) % self.num_tiles
        if destination == source:
            destination = (destination + 1) % self.num_tiles
        return destination


class NeighborTraffic(TrafficPattern):
    """Tile ``i`` sends to tile ``i + 1`` (best case: single-hop traffic on a mesh)."""

    name = "neighbor"

    def destination(self, source: int, rng: np.random.Generator) -> int:
        return (source + 1) % self.num_tiles


class HotspotTraffic(TrafficPattern):
    """A fraction of the traffic targets a small set of hotspot tiles.

    With probability ``hotspot_fraction`` the destination is drawn uniformly
    from ``hotspots``; otherwise it is uniform over all tiles.
    """

    name = "hotspot"

    def __init__(
        self, num_tiles: int, hotspots: tuple[int, ...], hotspot_fraction: float = 0.2
    ) -> None:
        super().__init__(num_tiles)
        if not hotspots:
            raise ValidationError("at least one hotspot tile is required")
        for tile in hotspots:
            if not (0 <= tile < num_tiles):
                raise ValidationError(f"hotspot tile {tile} out of range")
        check_in_range("hotspot_fraction", hotspot_fraction, 0.0, 1.0)
        self.hotspots = tuple(hotspots)
        self.hotspot_fraction = hotspot_fraction
        self._uniform = UniformRandomTraffic(num_tiles)

    def destination(self, source: int, rng: np.random.Generator) -> int:
        if rng.random() < self.hotspot_fraction:
            destination = int(self.hotspots[int(rng.integers(len(self.hotspots)))])
            if destination != source:
                return destination
        return self._uniform.destination(source, rng)


# --------------------------------------------------------------- registry
# Mirrors the topology registry: a single place to enumerate and instantiate
# all traffic patterns by name.  Every factory takes the tile count and grid
# dimensions (some patterns, like transpose, need the grid shape) plus
# pattern-specific keyword arguments.


def _make_uniform(num_tiles: int, rows: int, cols: int, **kwargs) -> TrafficPattern:
    return UniformRandomTraffic(num_tiles)


def _make_transpose(num_tiles: int, rows: int, cols: int, **kwargs) -> TrafficPattern:
    return TransposeTraffic(num_tiles, rows, cols)


def _make_bit_complement(num_tiles: int, rows: int, cols: int, **kwargs) -> TrafficPattern:
    return BitComplementTraffic(num_tiles)


def _make_tornado(num_tiles: int, rows: int, cols: int, **kwargs) -> TrafficPattern:
    return TornadoTraffic(num_tiles)


def _make_neighbor(num_tiles: int, rows: int, cols: int, **kwargs) -> TrafficPattern:
    return NeighborTraffic(num_tiles)


def _make_hotspot(num_tiles: int, rows: int, cols: int, **kwargs) -> TrafficPattern:
    hotspots = kwargs.pop("hotspots", (0,))
    fraction = kwargs.pop("hotspot_fraction", 0.2)
    return HotspotTraffic(num_tiles, tuple(hotspots), fraction)


TrafficFactory = Callable[..., TrafficPattern]

TRAFFIC_FACTORIES: dict[str, TrafficFactory] = {
    "uniform": _make_uniform,
    "transpose": _make_transpose,
    "bit_complement": _make_bit_complement,
    "tornado": _make_tornado,
    "neighbor": _make_neighbor,
    "hotspot": _make_hotspot,
}


def available_traffic_patterns() -> list[str]:
    """Return the identifiers of all registered traffic patterns."""
    return sorted(TRAFFIC_FACTORIES)


def check_traffic_name(name: str) -> None:
    """Raise :class:`ValidationError` unless ``name`` is a registered pattern."""
    if name not in TRAFFIC_FACTORIES:
        raise ValidationError(
            f"unknown traffic pattern {name!r}; "
            f"known: {available_traffic_patterns()}"
        )


def make_traffic(name: str, num_tiles: int, rows: int, cols: int, **kwargs) -> TrafficPattern:
    """Instantiate a registered traffic pattern by identifier.

    Extra keyword arguments are forwarded to the pattern (e.g. ``hotspots``
    and ``hotspot_fraction`` for the hotspot pattern).
    """
    check_traffic_name(name)
    return TRAFFIC_FACTORIES[name](num_tiles, rows, cols, **kwargs)


def make_traffic_pattern(name: str, topology: Topology, **kwargs) -> TrafficPattern:
    """Create a traffic pattern by name for ``topology``."""
    return make_traffic(name, topology.num_tiles, topology.rows, topology.cols, **kwargs)


class InjectionProcess:
    """Bernoulli packet injection for every tile.

    Parameters
    ----------
    pattern:
        Traffic pattern supplying destinations.
    injection_rate:
        Offered load in flits per tile per cycle (0 <= rate <= 1).
    packet_size_flits:
        Packet length; a packet is started with probability
        ``injection_rate / packet_size_flits`` per tile per cycle.
    seed:
        RNG seed for reproducibility.
    """

    def __init__(
        self,
        pattern: TrafficPattern,
        injection_rate: float,
        packet_size_flits: int,
        seed: int | None = 0,
    ) -> None:
        check_in_range("injection_rate", injection_rate, 0.0, 1.0)
        check_type("packet_size_flits", packet_size_flits, int)
        if packet_size_flits < 1:
            raise ValidationError("packet_size_flits must be >= 1")
        self.pattern = pattern
        self.injection_rate = injection_rate
        self.packet_size_flits = packet_size_flits
        self._rng = make_rng(seed, stream="injection")
        self._packet_probability = injection_rate / packet_size_flits

    def packets_for_cycle(self, cycle: int) -> list[tuple[int, int]]:
        """Return ``(source, destination)`` pairs of packets created this cycle."""
        if self._packet_probability <= 0.0:
            return []
        draws = self._rng.random(self.pattern.num_tiles)
        created = []
        for source in np.nonzero(draws < self._packet_probability)[0]:
            source = int(source)
            destination = self.pattern.destination(source, self._rng)
            created.append((source, destination))
        return created


class TraceInjector:
    """Deterministic packet injection replaying a recorded workload trace.

    The trace-driven counterpart of :class:`InjectionProcess`: instead of
    Bernoulli draws, packets are created exactly at the cycles a
    :class:`~repro.workloads.trace.WorkloadTrace` recorded them, with the
    recorded per-packet sizes.  The injector holds no RNG — replaying the
    same trace twice yields identical simulations by construction.

    The simulator queries cycles in ascending order, so the injector walks
    the (cycle-sorted) record arrays with a single pointer.

    Parameters
    ----------
    cycles, sources, destinations, sizes:
        The trace's record columns; ``cycles`` must be sorted ascending
        (guaranteed by :class:`~repro.workloads.trace.WorkloadTrace`).
    """

    def __init__(self, cycles, sources, destinations, sizes) -> None:
        self._cycles = [int(cycle) for cycle in cycles]
        self._sources = [int(source) for source in sources]
        self._destinations = [int(destination) for destination in destinations]
        self._sizes = [int(size) for size in sizes]
        if not (
            len(self._cycles)
            == len(self._sources)
            == len(self._destinations)
            == len(self._sizes)
        ):
            raise ValidationError("trace record columns must be equally long")
        self._position = 0
        self._released_flits = 0

    @property
    def num_packets(self) -> int:
        """Total number of packet records in the trace."""
        return len(self._cycles)

    @property
    def total_flits(self) -> int:
        """Total number of flits across all records."""
        return sum(self._sizes)

    @property
    def released_flits(self) -> int:
        """Flits of the records handed out so far (sanitizer accounting)."""
        return self._released_flits

    @property
    def last_cycle(self) -> int:
        """Creation cycle of the final record (``-1`` when empty)."""
        return self._cycles[-1] if self._cycles else -1

    @property
    def exhausted(self) -> bool:
        """``True`` once every record has been handed out."""
        return self._position >= len(self._cycles)

    @property
    def next_cycle(self) -> int:
        """Creation cycle of the next unreleased record (``-1`` when exhausted).

        Lets a quiescent simulator fast-forward to the next injection
        without querying every intermediate cycle.
        """
        if self._position >= len(self._cycles):
            return -1
        return self._cycles[self._position]

    def packets_for_cycle(self, cycle: int) -> list[tuple[int, int, int]]:
        """Return ``(source, destination, size_flits)`` of this cycle's records.

        Cycles must be queried in non-decreasing order; records belonging to
        cycles that were skipped are released as soon as a later cycle is
        queried (the replay never silently drops packets).
        """
        created = []
        position = self._position
        cycles = self._cycles
        end = len(cycles)
        while position < end and cycles[position] <= cycle:
            size = self._sizes[position]
            created.append(
                (self._sources[position], self._destinations[position], size)
            )
            self._released_flits += size
            position += 1
        self._position = position
        return created
