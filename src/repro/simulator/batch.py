"""Multi-point batched simulation: many runs of one compiled network, fused.

Campaigns are batch-shaped: a saturation sweep, a seed-replication study or a
successive-halving rung all simulate the *same* compiled network under many
``(seed, load point)`` configurations.  Run sequentially, each point pays the
full per-cycle Python overhead on its own; the ``vec`` engine
(:mod:`repro.simulator.engine.vec`) instead carries a leading batch axis, so
:class:`BatchSimulator` fuses all points into a single kernel in which every
numpy router pass advances every lane at once.

Batching is purely a scheduling change: each lane keeps its own traffic
generator, phase bounds and statistics accumulator, and the per-lane
:class:`~repro.simulator.statistics.SimulationStats` are **bit-identical** to
running each configuration alone through any registered engine (asserted by
``tests/unit/test_batch.py`` and the differential suite).  Because of that,
the batch always runs on the ``vec`` engine regardless of the engine named by
the lane configurations — the result is the same, only the wall-clock
changes.

The sweep helpers (:func:`repro.simulator.sweep.run_batch` and the batched
fast paths inside :func:`~repro.simulator.sweep.run_load_sweep` /
:func:`~repro.simulator.sweep.find_saturation_throughput`) build on this
class, which is how the speedup reaches ``ExperimentRunner`` campaigns,
``repro.optimize.run_search`` rungs and the CLI without any caller changes
beyond ``engine="vec"``.  See ``docs/PERFORMANCE.md`` for measurements.
"""

from __future__ import annotations

from dataclasses import replace
from typing import TYPE_CHECKING, Sequence

from repro.simulator.engine.vec import run_batched
from repro.simulator.network import Network, build_network
from repro.simulator.routing_tables import RoutingTables, build_routing_tables
from repro.simulator.simulation import SimulationConfig, Simulator
from repro.simulator.statistics import SimulationStats
from repro.topologies.base import Link, Topology
from repro.utils.validation import ValidationError

if TYPE_CHECKING:  # imported for type hints only; no runtime dependency
    from repro.workloads.trace import WorkloadTrace


class BatchSimulator:
    """Simulate many configurations of one topology in a single fused kernel.

    Parameters
    ----------
    topology:
        The NoC topology every lane simulates.
    configs:
        One :class:`SimulationConfig` per lane.  All lanes must share the
        router-level parameters (``num_vcs``, ``buffer_depth_flits``,
        ``router_pipeline_cycles``, ``packet_size_flits``) because they share
        one compiled network; the injection process (rate, traffic, seed) and
        the phase windows may vary freely per lane.  The ``engine`` field is
        ignored — the fused kernel *is* the ``vec`` engine, and all engines
        are bit-identical.
    link_latencies, routing, network:
        Prebuilt structures to share, exactly as in
        :class:`~repro.simulator.simulation.Simulator`.
    traces:
        Optional per-lane workload traces, parallel to ``configs`` (``None``
        entries mean Bernoulli injection for that lane).  Trace-replay and
        synthetic lanes batch together freely.
    """

    def __init__(
        self,
        topology: Topology,
        configs: Sequence[SimulationConfig],
        link_latencies: dict[Link, int] | None = None,
        routing: RoutingTables | None = None,
        network: Network | None = None,
        traces: "Sequence[WorkloadTrace | None] | None" = None,
    ) -> None:
        if not configs:
            raise ValidationError("BatchSimulator needs at least one configuration")
        if traces is not None and len(traces) != len(configs):
            raise ValidationError(
                f"traces must be parallel to configs: got {len(traces)} traces "
                f"for {len(configs)} configurations"
            )
        net_config = configs[0].network_config()
        for index, config in enumerate(configs):
            if config.network_config() != net_config:
                raise ValidationError(
                    f"batched configuration {index} differs in router/network "
                    "parameters; all lanes share one compiled network, so "
                    "num_vcs, buffer_depth_flits, router_pipeline_cycles and "
                    "packet_size_flits must match across the batch (vary the "
                    "injection rate, traffic, seed or phase windows instead)"
                )
        if network is not None:
            self.network = network
        else:
            if routing is None:
                routing = build_routing_tables(topology)
            self.network = build_network(
                topology,
                config=net_config,
                link_latencies=link_latencies,
                routing=routing,
            )
        if traces is None:
            traces = [None] * len(configs)
        # One Simulator per lane: reuses all of its validation (prebuilt
        # network compatibility, trace tile count) and pins the lane to the
        # vec engine, the only kernel with a batch axis.
        self.simulators = [
            Simulator(
                topology,
                replace(config, engine="vec"),
                network=self.network,
                trace=trace,
            )
            for config, trace in zip(configs, traces)
        ]

    def __len__(self) -> int:
        return len(self.simulators)

    @property
    def cycles_simulated(self) -> int:
        """Total cycles advanced across all lanes so far."""
        return sum(sim.cycles_simulated for sim in self.simulators)

    def run(self) -> list[SimulationStats]:
        """Run every lane to completion and return per-lane statistics.

        The returned list is parallel to the ``configs`` the batch was built
        from, and each entry is bit-identical to ``Simulator(...).run()`` for
        that lane alone.
        """
        return run_batched([sim.engine for sim in self.simulators])


__all__ = ["BatchSimulator"]
