"""The cycle-based simulation kernel.

:class:`Simulator` drives a :class:`~repro.simulator.network.Network` of
:class:`~repro.simulator.router.Router` instances cycle by cycle through three
phases:

* **warmup** — traffic is injected but packets are not measured,
* **measurement** — packets created in this window are tagged and measured,
* **drain** — injection continues (to keep the network loaded) but the run
  stops as soon as every measured packet has been delivered, or when the drain
  limit is reached (a saturated network never drains; the statistics flag
  this).

Flits and credits in flight on channels are kept in a *slotted event wheel*
sized by the maximum link latency: a link with an ``L``-cycle latency simply
schedules its deliveries ``L`` slots ahead on the wheel — this is how the
physical model's per-link latency estimates enter the performance prediction
(Figure 3 of the paper).

Scheduling
----------
The kernel is *activity-driven* (the scheduling style BookSim2-class
simulators use): instead of scanning every router every cycle, the simulator
maintains an **active set** of routers that hold buffered flits and a
**pending set** of tiles with queued or partially injected packets.  Routers
enter the active set when a flit is delivered to them (from a channel or the
injection port) and leave it when their buffers drain; a router outside the
active set provably has nothing to do (credits arriving at an empty router
change no observable state until its next flit arrives).  Both sets are
iterated in ascending node order, so results are **bit-identical** to the
dense per-cycle scan — enforced by ``tests/unit/test_simulation_golden.py``.

For repeated runs on the same topology (load sweeps), pass a prebuilt
``network`` (and ``routing``): the network is immutable, so sharing it across
runs skips per-run construction and reuses the compiled routing arrays.  See
``docs/PERFORMANCE.md`` for the measured effect of this design.

Trace replay
------------
Besides the Bernoulli injection process, the simulator can **replay a
recorded workload trace** (``trace=`` parameter): packets are created exactly
at the cycles a :class:`~repro.workloads.trace.WorkloadTrace` recorded them,
with the recorded per-packet sizes, through the deterministic
:class:`~repro.simulator.traffic.TraceInjector`.  In trace mode every packet
is measured and every delivery counts (throughput is normalised by the trace
duration, with drain-time arrivals included, so a fully drained replay
accepts exactly what the trace offered); the run drains after the trace ends
exactly like a synthetic run, and the same active-set / event-wheel hot path
executes unchanged.  Per-phase statistics (one
:class:`~repro.simulator.statistics.PhaseStats` per named trace phase) are
reported in ``SimulationStats.phases``.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING

from repro.simulator.flit import Flit, Packet, packet_to_flits
from repro.simulator.network import Network, NetworkConfig, build_network
from repro.simulator.router import INJECT_PORT, Router
from repro.simulator.routing_tables import RoutingTables
from repro.simulator.statistics import SimulationStats, _Accumulator
from repro.simulator.traffic import (
    InjectionProcess,
    TraceInjector,
    check_traffic_name,
    make_traffic_pattern,
)
from repro.topologies.base import Link, Topology
from repro.utils.validation import ValidationError, check_in_range, check_type

if TYPE_CHECKING:  # imported for type hints only; no runtime dependency
    from repro.workloads.trace import WorkloadTrace


@dataclass(frozen=True)
class SimulationConfig:
    """Configuration of one simulation run.

    Attributes
    ----------
    injection_rate:
        Offered load in flits per tile per cycle (fraction of capacity).
    traffic:
        Traffic pattern name (``uniform`` is the paper's evaluation pattern).
    packet_size_flits, num_vcs, buffer_depth_flits, router_pipeline_cycles:
        Router/packet configuration (see :class:`NetworkConfig`).
    warmup_cycles, measurement_cycles, drain_max_cycles:
        Phase lengths.
    seed:
        RNG seed (traffic generation).
    """

    injection_rate: float = 0.05
    traffic: str = "uniform"
    packet_size_flits: int = 4
    num_vcs: int = 8
    buffer_depth_flits: int = 4
    router_pipeline_cycles: int = 2
    warmup_cycles: int = 500
    measurement_cycles: int = 1000
    drain_max_cycles: int = 3000
    seed: int = 1

    def __post_init__(self) -> None:
        check_traffic_name(self.traffic)
        check_in_range("injection_rate", self.injection_rate, 0.0, 1.0)
        check_type("warmup_cycles", self.warmup_cycles, int)
        check_type("measurement_cycles", self.measurement_cycles, int)
        check_type("drain_max_cycles", self.drain_max_cycles, int)
        if self.measurement_cycles < 1:
            raise ValidationError("measurement_cycles must be >= 1")
        if self.warmup_cycles < 0 or self.drain_max_cycles < 0:
            raise ValidationError("cycle counts must be non-negative")

    def network_config(self) -> NetworkConfig:
        """Derive the router-level configuration."""
        return NetworkConfig(
            num_vcs=self.num_vcs,
            buffer_depth_flits=self.buffer_depth_flits,
            router_pipeline_cycles=self.router_pipeline_cycles,
            packet_size_flits=self.packet_size_flits,
        )


@dataclass
class _InjectionState:
    """Per-tile source queue and the packet currently being injected."""

    queue: list[Packet] = field(default_factory=list)
    current_flits: list[Flit] = field(default_factory=list)
    current_vc: int | None = None

    @property
    def idle(self) -> bool:
        return not self.queue and not self.current_flits


class Simulator:
    """Cycle-accurate simulation of one topology under one traffic load.

    Parameters
    ----------
    topology:
        The NoC topology to simulate.
    config:
        Run configuration; defaults to the paper's evaluation setup.
    link_latencies:
        Per-link latency estimates from the physical model (ignored when a
        prebuilt ``network`` is given, which already carries them).
    routing:
        Pre-built routing tables to share across runs (ignored when a
        prebuilt ``network`` is given).
    network:
        A prebuilt :class:`Network` to reuse.  It must have been built from
        ``topology`` with a :class:`NetworkConfig` equal to
        ``config.network_config()`` — load sweeps use this to skip per-run
        network construction.
    trace:
        A :class:`~repro.workloads.trace.WorkloadTrace` to replay instead of
        Bernoulli injection.  The trace must address the same number of
        tiles as the topology; ``config.injection_rate``, ``traffic``,
        ``packet_size_flits`` (for injection), ``warmup_cycles`` and
        ``measurement_cycles`` are ignored in trace mode (the measurement
        window is the trace duration; ``drain_max_cycles`` still bounds the
        drain).
    """

    def __init__(
        self,
        topology: Topology,
        config: SimulationConfig | None = None,
        link_latencies: dict[Link, int] | None = None,
        routing: RoutingTables | None = None,
        network: Network | None = None,
        trace: "WorkloadTrace | None" = None,
    ) -> None:
        self.config = config or SimulationConfig()
        if network is not None:
            if network.topology is not topology:
                raise ValidationError(
                    "prebuilt network was constructed from a different topology"
                )
            if network.config != self.config.network_config():
                raise ValidationError(
                    "prebuilt network was constructed with a different NetworkConfig"
                )
            self.network = network
        else:
            self.network = build_network(
                topology,
                config=self.config.network_config(),
                link_latencies=link_latencies,
                routing=routing,
            )
        num_nodes = self.network.num_nodes
        self.routers = [Router(node, self.network) for node in range(num_nodes)]
        self._trace = trace
        self._trace_injector: TraceInjector | None = None
        self._trace_duration = 0
        if trace is not None:
            if trace.num_tiles != num_nodes:
                raise ValidationError(
                    f"trace addresses {trace.num_tiles} tiles but the topology "
                    f"has {num_nodes}"
                )
            self.injection = None
            self._trace_injector = TraceInjector(
                trace.cycles, trace.sources, trace.destinations, trace.sizes
            )
            self._trace_duration = max(1, trace.duration)
        else:
            pattern = make_traffic_pattern(self.config.traffic, topology)
            self.injection = InjectionProcess(
                pattern,
                self.config.injection_rate,
                self.config.packet_size_flits,
                seed=self.config.seed,
            )

        # Channel attributes flattened into arrays indexed by channel id, so
        # event scheduling does one list index instead of an object traversal.
        channels = self.network.channels
        self._channel_latency = [channel.latency_cycles for channel in channels]
        self._channel_dest = [channel.destination for channel in channels]
        self._channel_src = [channel.source for channel in channels]

        # The event wheel: slot (cycle % wheel size) holds the deliveries due
        # in that cycle.  One extra slot keeps "now + max latency" distinct
        # from "now".
        self._wheel_size = self.network.max_latency_cycles + 1
        self._flit_wheel: list[list[tuple[int, int, int, Flit]]] = [
            [] for _ in range(self._wheel_size)
        ]
        self._credit_wheel: list[list[tuple[int, int, int]]] = [
            [] for _ in range(self._wheel_size)
        ]

        self._injection_states = [_InjectionState() for _ in range(num_nodes)]
        #: Routers currently holding buffered flits (the only ones stepped).
        self._active: set[int] = set()
        #: Tiles with queued packets or a partially injected packet.
        self._pending_injection: set[int] = set()

        self._accumulator = _Accumulator()
        if trace is not None and trace.phases:
            counts = trace.phase_record_counts()
            self._accumulator.configure_phases(
                names=list(trace.phase_names),
                spans=[(phase.start_cycle, phase.end_cycle) for phase in trace.phases],
                created=[packets for packets, _ in counts],
                offered_flits=[flits for _, flits in counts],
                phase_of_cycle=trace.phase_of_cycle_table(),
            )
        self._packet_counter = 0
        self._cycle = 0
        self._packets_measured = 0
        self._measured_in_flight = 0

    @property
    def cycles_simulated(self) -> int:
        """Number of cycles the kernel has advanced through so far."""
        return self._cycle

    # ----------------------------------------------------------- event plumbing
    def _schedule_flit(self, channel_id: int, vc: int, flit: Flit) -> None:
        latency = self._channel_latency[channel_id]
        slot = (self._cycle + latency) % self._wheel_size
        self._flit_wheel[slot].append((self._channel_dest[channel_id], channel_id, vc, flit))

    def _schedule_credit(self, channel_id: int, vc: int) -> None:
        latency = self._channel_latency[channel_id]
        slot = (self._cycle + latency) % self._wheel_size
        self._credit_wheel[slot].append((self._channel_src[channel_id], channel_id, vc))

    def _deliver_events(self) -> None:
        slot = self._cycle % self._wheel_size
        flit_events = self._flit_wheel[slot]
        if flit_events:
            routers = self.routers
            active = self._active
            cycle = self._cycle
            for node, channel_id, vc, flit in flit_events:
                routers[node].receive_flit(channel_id, vc, flit, cycle)
                active.add(node)
            self._flit_wheel[slot] = []
        credit_events = self._credit_wheel[slot]
        if credit_events:
            routers = self.routers
            for node, channel_id, vc in credit_events:
                routers[node].receive_credit(channel_id, vc)
            self._credit_wheel[slot] = []

    # ------------------------------------------------------------- injection
    def _create_packets(self, measured: bool) -> None:
        for source, destination in self.injection.packets_for_cycle(self._cycle):
            packet = Packet(
                packet_id=self._packet_counter,
                source=source,
                destination=destination,
                size_flits=self.config.packet_size_flits,
                creation_cycle=self._cycle,
                is_measured=measured,
            )
            self._packet_counter += 1
            self._accumulator.packets_created += 1
            if measured:
                self._packets_measured += 1
                self._measured_in_flight += 1
            self._injection_states[source].queue.append(packet)
            self._pending_injection.add(source)

    def _create_trace_packets(self) -> None:
        """Trace-mode packet creation: replay this cycle's recorded packets."""
        assert self._trace_injector is not None
        for source, destination, size in self._trace_injector.packets_for_cycle(
            self._cycle
        ):
            packet = Packet(
                packet_id=self._packet_counter,
                source=source,
                destination=destination,
                size_flits=size,
                creation_cycle=self._cycle,
                is_measured=True,
            )
            self._packet_counter += 1
            self._accumulator.packets_created += 1
            self._packets_measured += 1
            self._measured_in_flight += 1
            self._injection_states[source].queue.append(packet)
            self._pending_injection.add(source)

    def _inject_flits(self) -> None:
        if not self._pending_injection:
            return
        states = self._injection_states
        active = self._active
        cycle = self._cycle
        for node in sorted(self._pending_injection):
            state = states[node]
            router = self.routers[node]
            if not state.current_flits and state.queue:
                vc = router.free_injection_vc()
                if vc is not None:
                    packet = state.queue.pop(0)
                    state.current_flits = packet_to_flits(packet)
                    state.current_vc = vc
            if state.current_flits and state.current_vc is not None:
                if router.injection_space(state.current_vc):
                    flit = state.current_flits.pop(0)
                    if flit.is_head:
                        flit.packet.injection_cycle = cycle
                    router.receive_flit(INJECT_PORT, state.current_vc, flit, cycle)
                    active.add(node)
                    if flit.is_tail:
                        state.current_vc = None
            if state.idle:
                self._pending_injection.discard(node)

    # -------------------------------------------------------------- ejection
    def _eject_measured(self, flit: Flit, cycle: int) -> None:
        """Ejection callback for cycles inside the measurement window."""
        self._eject(flit, cycle, True)

    def _eject_unmeasured(self, flit: Flit, cycle: int) -> None:
        """Ejection callback for warmup and drain cycles."""
        self._eject(flit, cycle, False)

    def _eject(self, flit: Flit, cycle: int, in_measurement_window: bool) -> None:
        if flit.is_tail:
            packet = flit.packet
            packet.arrival_cycle = cycle
            self._accumulator.record_delivery(
                packet, flit.hops, packet.used_escape, in_measurement_window
            )
            if packet.is_measured:
                self._measured_in_flight -= 1
        if in_measurement_window:
            self._accumulator.flits_delivered_measurement += 1

    # ------------------------------------------------------------------ run
    def run(self) -> SimulationStats:
        """Run warmup, measurement and drain and return the statistics.

        In trace mode the measurement window spans the whole trace (warmup
        is empty — every replayed packet is measured) and the run drains
        until every packet arrived or ``drain_max_cycles`` expires.
        """
        config = self.config
        trace_mode = self._trace_injector is not None
        if trace_mode:
            warmup_end = 0
            measurement_end = self._trace_duration
        else:
            warmup_end = config.warmup_cycles
            measurement_end = warmup_end + config.measurement_cycles
        hard_end = measurement_end + config.drain_max_cycles

        routers = self.routers
        active = self._active
        schedule_flit = self._schedule_flit
        schedule_credit = self._schedule_credit

        drained = True
        while True:
            # Trace mode measures the whole run: every replayed packet is
            # measured, and flits arriving during the drain still count
            # towards the accepted load (a fully drained replay accepts
            # exactly what the trace offered).
            in_measurement = (
                True if trace_mode else warmup_end <= self._cycle < measurement_end
            )
            eject = self._eject_measured if in_measurement else self._eject_unmeasured

            self._deliver_events()
            if trace_mode:
                self._create_trace_packets()
            else:
                self._create_packets(measured=in_measurement)
            self._inject_flits()

            if active:
                for node in sorted(active):
                    router = routers[node]
                    router.step(self._cycle, schedule_flit, schedule_credit, eject)
                    if not router.buffered_count:
                        active.discard(node)

            self._cycle += 1
            if self._cycle >= measurement_end and self._measured_in_flight == 0:
                break
            if self._cycle >= hard_end:
                drained = self._measured_in_flight == 0
                break

        if trace_mode:
            assert self._trace_injector is not None
            offered = self._trace_injector.total_flits / (
                self._trace_duration * self.network.num_nodes
            )
            return self._accumulator.finalize(
                offered_load=offered,
                measurement_cycles=self._trace_duration,
                num_tiles=self.network.num_nodes,
                packets_measured=self._packets_measured,
                drained=drained,
            )
        return self._accumulator.finalize(
            offered_load=config.injection_rate,
            measurement_cycles=config.measurement_cycles,
            num_tiles=self.network.num_nodes,
            packets_measured=self._packets_measured,
            drained=drained,
        )
