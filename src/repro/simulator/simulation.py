"""The cycle-based simulation front end.

:class:`Simulator` drives one run of a :class:`~repro.simulator.network.Network`
through three phases:

* **warmup** — traffic is injected but packets are not measured,
* **measurement** — packets created in this window are tagged and measured,
* **drain** — injection continues (to keep the network loaded) but the run
  stops as soon as every measured packet has been delivered, or when the drain
  limit is reached (a saturated network never drains; the statistics flag
  this).

The actual kernel is a pluggable **engine** (see
:mod:`repro.simulator.engine`): ``Simulator`` validates the inputs, resolves
the network (building it, or reusing a prebuilt one), and delegates the run
to the engine named by ``config.engine`` — the object-graph ``reference``
kernel or the struct-of-arrays ``soa`` kernel.  All engines are
**bit-identical**: for a fixed configuration and seed they produce the exact
same :class:`~repro.simulator.statistics.SimulationStats` (enforced by
``tests/unit/test_simulation_golden.py`` and
``tests/unit/test_engine_equivalence.py``), so the engine choice is purely a
speed/readability trade-off and is excluded from experiment identity hashes.

For repeated runs on the same topology (load sweeps), pass a prebuilt
``network`` (and ``routing``): the network is immutable, so sharing it across
runs skips per-run construction and reuses the compiled routing arrays.  See
``docs/PERFORMANCE.md`` for the measured effect of this design.

Trace replay
------------
Besides the Bernoulli injection process, the simulator can **replay a
recorded workload trace** (``trace=`` parameter): packets are created exactly
at the cycles a :class:`~repro.workloads.trace.WorkloadTrace` recorded them,
with the recorded per-packet sizes, through the deterministic
:class:`~repro.simulator.traffic.TraceInjector`.  In trace mode every packet
is measured and every delivery counts (throughput is normalised by the trace
duration, with drain-time arrivals included, so a fully drained replay
accepts exactly what the trace offered); the run drains after the trace ends
exactly like a synthetic run.  Per-phase statistics (one
:class:`~repro.simulator.statistics.PhaseStats` per named trace phase) are
reported in ``SimulationStats.phases``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING

from repro.simulator.engine import DEFAULT_ENGINE, check_engine_name, make_engine
from repro.simulator.network import Network, NetworkConfig, build_network
from repro.simulator.routing_tables import RoutingTables
from repro.simulator.statistics import SimulationStats
from repro.simulator.traffic import check_traffic_name
from repro.topologies.base import Link, Topology
from repro.utils.validation import ValidationError, check_in_range, check_type

if TYPE_CHECKING:  # imported for type hints only; no runtime dependency
    from repro.workloads.trace import WorkloadTrace


@dataclass(frozen=True)
class SimulationConfig:
    """Configuration of one simulation run.

    Attributes
    ----------
    injection_rate:
        Offered load in flits per tile per cycle (fraction of capacity).
    traffic:
        Traffic pattern name (``uniform`` is the paper's evaluation pattern).
    packet_size_flits, num_vcs, buffer_depth_flits, router_pipeline_cycles:
        Router/packet configuration (see :class:`NetworkConfig`).
    warmup_cycles, measurement_cycles, drain_max_cycles:
        Phase lengths.
    seed:
        RNG seed (traffic generation).
    engine:
        Simulation-engine name (see :mod:`repro.simulator.engine`):
        ``"reference"`` (object-graph kernel, the default), ``"soa"``
        (struct-of-arrays kernel, bit-identical and several times faster)
        or ``"sanitizer"`` (reference kernel plus per-cycle invariant
        checks, bit-identical and slower).  Because all engines produce
        identical statistics, the engine is *not* part of an experiment's
        identity hash.
    audit_interval:
        Sampling period of the sanitizer engine's invariant audit: the full
        state audit runs every ``audit_interval`` cycles instead of every
        cycle.  ``1`` (the default) audits every cycle.  The audit only
        *reads* state, so the statistics are bit-identical for any value;
        like ``engine``, the interval is excluded from experiment identity.
        Ignored by the other engines.
    """

    injection_rate: float = 0.05
    traffic: str = "uniform"
    packet_size_flits: int = 4
    num_vcs: int = 8
    buffer_depth_flits: int = 4
    router_pipeline_cycles: int = 2
    warmup_cycles: int = 500
    measurement_cycles: int = 1000
    drain_max_cycles: int = 3000
    seed: int = 1
    engine: str = DEFAULT_ENGINE
    audit_interval: int = 1

    def __post_init__(self) -> None:
        check_traffic_name(self.traffic)
        check_engine_name(self.engine)
        check_in_range("injection_rate", self.injection_rate, 0.0, 1.0)
        check_type("warmup_cycles", self.warmup_cycles, int)
        check_type("measurement_cycles", self.measurement_cycles, int)
        check_type("drain_max_cycles", self.drain_max_cycles, int)
        check_type("audit_interval", self.audit_interval, int)
        if self.audit_interval < 1:
            raise ValidationError("audit_interval must be >= 1")
        if self.measurement_cycles < 1:
            raise ValidationError("measurement_cycles must be >= 1")
        if self.warmup_cycles < 0 or self.drain_max_cycles < 0:
            raise ValidationError("cycle counts must be non-negative")
        # Validate the VC/buffer parameters here, not only when the network
        # is built: a bad value would otherwise surface as a late IndexError
        # deep inside a run instead of at construction.
        check_type("num_vcs", self.num_vcs, int)
        check_type("buffer_depth_flits", self.buffer_depth_flits, int)
        check_type("router_pipeline_cycles", self.router_pipeline_cycles, int)
        check_type("packet_size_flits", self.packet_size_flits, int)
        if self.num_vcs < 1:
            raise ValidationError(
                f"num_vcs must be >= 1 (got {self.num_vcs}): the escape VC "
                "(VC 0) always exists; num_vcs >= 2 adds the adaptive layer"
            )
        if self.buffer_depth_flits < 1:
            raise ValidationError(
                f"buffer_depth_flits must be >= 1 (got {self.buffer_depth_flits})"
            )
        if self.router_pipeline_cycles < 1:
            raise ValidationError(
                f"router_pipeline_cycles must be >= 1 "
                f"(got {self.router_pipeline_cycles})"
            )
        if self.packet_size_flits < 1:
            raise ValidationError(
                f"packet_size_flits must be >= 1 (got {self.packet_size_flits})"
            )

    def network_config(self) -> NetworkConfig:
        """Derive the router-level configuration."""
        return NetworkConfig(
            num_vcs=self.num_vcs,
            buffer_depth_flits=self.buffer_depth_flits,
            router_pipeline_cycles=self.router_pipeline_cycles,
            packet_size_flits=self.packet_size_flits,
        )


class Simulator:
    """Cycle-accurate simulation of one topology under one traffic load.

    Parameters
    ----------
    topology:
        The NoC topology to simulate.
    config:
        Run configuration; defaults to the paper's evaluation setup.  Its
        ``engine`` field names the kernel implementation to run.
    link_latencies:
        Per-link latency estimates from the physical model (ignored when a
        prebuilt ``network`` is given, which already carries them).
    routing:
        Pre-built routing tables to share across runs (ignored when a
        prebuilt ``network`` is given).
    network:
        A prebuilt :class:`Network` to reuse.  It must have been built from
        ``topology`` with a :class:`NetworkConfig` equal to
        ``config.network_config()`` — load sweeps use this to skip per-run
        network construction.
    trace:
        A :class:`~repro.workloads.trace.WorkloadTrace` to replay instead of
        Bernoulli injection.  The trace must address the same number of
        tiles as the topology; ``config.injection_rate``, ``traffic``,
        ``packet_size_flits`` (for injection), ``warmup_cycles`` and
        ``measurement_cycles`` are ignored in trace mode (the measurement
        window is the trace duration; ``drain_max_cycles`` still bounds the
        drain).
    """

    def __init__(
        self,
        topology: Topology,
        config: SimulationConfig | None = None,
        link_latencies: dict[Link, int] | None = None,
        routing: RoutingTables | None = None,
        network: Network | None = None,
        trace: "WorkloadTrace | None" = None,
    ) -> None:
        self.config = config or SimulationConfig()
        if network is not None:
            if network.topology is not topology:
                raise ValidationError(
                    "prebuilt network was constructed from a different topology"
                )
            if network.config != self.config.network_config():
                raise ValidationError(
                    "prebuilt network was constructed with a different NetworkConfig"
                )
            self.network = network
        else:
            self.network = build_network(
                topology,
                config=self.config.network_config(),
                link_latencies=link_latencies,
                routing=routing,
            )
        if trace is not None and trace.num_tiles != self.network.num_nodes:
            raise ValidationError(
                f"trace addresses {trace.num_tiles} tiles but the topology "
                f"has {self.network.num_nodes}"
            )
        self.engine = make_engine(
            self.config.engine, topology, self.config, self.network, trace=trace
        )

    @property
    def cycles_simulated(self) -> int:
        """Number of cycles the kernel has advanced through so far."""
        return self.engine.cycles_simulated

    def run(self) -> SimulationStats:
        """Run warmup, measurement and drain and return the statistics.

        In trace mode the measurement window spans the whole trace (warmup
        is empty — every replayed packet is measured) and the run drains
        until every packet arrived or ``drain_max_cycles`` expires.
        """
        return self.engine.run()
