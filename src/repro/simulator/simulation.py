"""The cycle-based simulation kernel.

:class:`Simulator` drives a :class:`~repro.simulator.network.Network` of
:class:`~repro.simulator.router.Router` instances cycle by cycle through three
phases:

* **warmup** — traffic is injected but packets are not measured,
* **measurement** — packets created in this window are tagged and measured,
* **drain** — injection continues (to keep the network loaded) but the run
  stops as soon as every measured packet has been delivered, or when the drain
  limit is reached (a saturated network never drains; the statistics flag
  this).

Flits and credits in flight on channels are kept in per-cycle event queues, so
a link with an ``L``-cycle latency simply schedules its deliveries ``L``
cycles into the future — this is how the physical model's per-link latency
estimates enter the performance prediction (Figure 3 of the paper).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.simulator.flit import Flit, Packet, packet_to_flits
from repro.simulator.network import Network, NetworkConfig, build_network
from repro.simulator.router import INJECT_PORT, Router
from repro.simulator.routing_tables import RoutingTables
from repro.simulator.statistics import SimulationStats, _Accumulator
from repro.simulator.traffic import (
    InjectionProcess,
    check_traffic_name,
    make_traffic_pattern,
)
from repro.topologies.base import Link, Topology
from repro.utils.validation import ValidationError, check_in_range, check_type


@dataclass(frozen=True)
class SimulationConfig:
    """Configuration of one simulation run.

    Attributes
    ----------
    injection_rate:
        Offered load in flits per tile per cycle (fraction of capacity).
    traffic:
        Traffic pattern name (``uniform`` is the paper's evaluation pattern).
    packet_size_flits, num_vcs, buffer_depth_flits, router_pipeline_cycles:
        Router/packet configuration (see :class:`NetworkConfig`).
    warmup_cycles, measurement_cycles, drain_max_cycles:
        Phase lengths.
    seed:
        RNG seed (traffic generation).
    """

    injection_rate: float = 0.05
    traffic: str = "uniform"
    packet_size_flits: int = 4
    num_vcs: int = 8
    buffer_depth_flits: int = 4
    router_pipeline_cycles: int = 2
    warmup_cycles: int = 500
    measurement_cycles: int = 1000
    drain_max_cycles: int = 3000
    seed: int = 1

    def __post_init__(self) -> None:
        check_traffic_name(self.traffic)
        check_in_range("injection_rate", self.injection_rate, 0.0, 1.0)
        check_type("warmup_cycles", self.warmup_cycles, int)
        check_type("measurement_cycles", self.measurement_cycles, int)
        check_type("drain_max_cycles", self.drain_max_cycles, int)
        if self.measurement_cycles < 1:
            raise ValidationError("measurement_cycles must be >= 1")
        if self.warmup_cycles < 0 or self.drain_max_cycles < 0:
            raise ValidationError("cycle counts must be non-negative")

    def network_config(self) -> NetworkConfig:
        """Derive the router-level configuration."""
        return NetworkConfig(
            num_vcs=self.num_vcs,
            buffer_depth_flits=self.buffer_depth_flits,
            router_pipeline_cycles=self.router_pipeline_cycles,
            packet_size_flits=self.packet_size_flits,
        )


@dataclass
class _InjectionState:
    """Per-tile source queue and the packet currently being injected."""

    queue: list[Packet] = field(default_factory=list)
    current_flits: list[Flit] = field(default_factory=list)
    current_vc: int | None = None

    @property
    def idle(self) -> bool:
        return not self.queue and not self.current_flits


class Simulator:
    """Cycle-accurate simulation of one topology under one traffic load."""

    def __init__(
        self,
        topology: Topology,
        config: SimulationConfig | None = None,
        link_latencies: dict[Link, int] | None = None,
        routing: RoutingTables | None = None,
    ) -> None:
        self.config = config or SimulationConfig()
        self.network: Network = build_network(
            topology,
            config=self.config.network_config(),
            link_latencies=link_latencies,
            routing=routing,
        )
        self.routers = [Router(node, self.network) for node in range(self.network.num_nodes)]
        pattern = make_traffic_pattern(self.config.traffic, topology)
        self.injection = InjectionProcess(
            pattern,
            self.config.injection_rate,
            self.config.packet_size_flits,
            seed=self.config.seed,
        )
        self._flit_events: dict[int, list[tuple[int, int, int, Flit]]] = {}
        self._credit_events: dict[int, list[tuple[int, int, int]]] = {}
        self._injection_states = [_InjectionState() for _ in range(self.network.num_nodes)]
        self._accumulator = _Accumulator()
        self._packet_counter = 0
        self._cycle = 0
        self._packets_measured = 0
        self._measured_in_flight = 0

    # ----------------------------------------------------------- event plumbing
    def _schedule_flit(self, channel_id: int, vc: int, flit: Flit) -> None:
        channel = self.network.channels[channel_id]
        arrival = self._cycle + channel.latency_cycles
        self._flit_events.setdefault(arrival, []).append(
            (channel.destination, channel_id, vc, flit)
        )

    def _schedule_credit(self, channel_id: int, vc: int) -> None:
        channel = self.network.channels[channel_id]
        arrival = self._cycle + channel.latency_cycles
        self._credit_events.setdefault(arrival, []).append((channel.source, channel_id, vc))

    def _deliver_events(self) -> None:
        for node, channel_id, vc, flit in self._flit_events.pop(self._cycle, []):
            self.routers[node].receive_flit(channel_id, vc, flit, self._cycle)
        for node, channel_id, vc in self._credit_events.pop(self._cycle, []):
            self.routers[node].receive_credit(channel_id, vc)

    # ------------------------------------------------------------- injection
    def _create_packets(self, measured: bool) -> None:
        for source, destination in self.injection.packets_for_cycle(self._cycle):
            packet = Packet(
                packet_id=self._packet_counter,
                source=source,
                destination=destination,
                size_flits=self.config.packet_size_flits,
                creation_cycle=self._cycle,
                is_measured=measured,
            )
            self._packet_counter += 1
            self._accumulator.packets_created += 1
            if measured:
                self._packets_measured += 1
                self._measured_in_flight += 1
            self._injection_states[source].queue.append(packet)

    def _inject_flits(self) -> None:
        for node, state in enumerate(self._injection_states):
            router = self.routers[node]
            if not state.current_flits and state.queue:
                vc = router.free_injection_vc()
                if vc is not None:
                    packet = state.queue.pop(0)
                    state.current_flits = packet_to_flits(packet)
                    state.current_vc = vc
            if state.current_flits and state.current_vc is not None:
                if router.injection_space(state.current_vc):
                    flit = state.current_flits.pop(0)
                    if flit.is_head:
                        flit.packet.injection_cycle = self._cycle
                    router.receive_flit(INJECT_PORT, state.current_vc, flit, self._cycle)
                    if flit.is_tail:
                        state.current_vc = None

    # -------------------------------------------------------------- ejection
    def _eject(self, flit: Flit, cycle: int, in_measurement_window: bool) -> None:
        if flit.is_tail:
            packet = flit.packet
            packet.arrival_cycle = cycle
            self._accumulator.record_delivery(
                packet, flit.hops, packet.used_escape, in_measurement_window
            )
            if packet.is_measured:
                self._measured_in_flight -= 1
        if in_measurement_window:
            self._accumulator.flits_delivered_measurement += 1

    # ------------------------------------------------------------------ run
    def run(self) -> SimulationStats:
        """Run warmup, measurement and drain and return the statistics."""
        config = self.config
        warmup_end = config.warmup_cycles
        measurement_end = warmup_end + config.measurement_cycles
        hard_end = measurement_end + config.drain_max_cycles

        drained = True
        while True:
            in_warmup = self._cycle < warmup_end
            in_measurement = warmup_end <= self._cycle < measurement_end

            self._deliver_events()
            self._create_packets(measured=in_measurement)
            self._inject_flits()

            eject = lambda flit, cycle: self._eject(flit, cycle, in_measurement)  # noqa: E731
            for router in self.routers:
                if router.has_work():
                    router.step(self._cycle, self._schedule_flit, self._schedule_credit, eject)

            self._cycle += 1
            if self._cycle >= measurement_end and self._measured_in_flight == 0:
                break
            if self._cycle >= hard_end:
                drained = self._measured_in_flight == 0
                break
            del in_warmup

        return self._accumulator.finalize(
            offered_load=config.injection_rate,
            measurement_cycles=config.measurement_cycles,
            num_tiles=self.network.num_nodes,
            packets_measured=self._packets_measured,
            drained=drained,
        )
