"""Simulation statistics: latency, throughput, and hop-count distributions.

Trace replays additionally report **phase-aware** statistics: every packet of
a :class:`~repro.workloads.trace.WorkloadTrace` is attributed to the
:class:`~repro.workloads.trace.TracePhase` containing its creation cycle, and
:attr:`SimulationStats.phases` holds one :class:`PhaseStats` per phase
(latency distribution, delivered throughput, offered load).  Synthetic
Bernoulli runs have no phases and report ``phases == {}``.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.simulator.flit import Packet


@dataclass(frozen=True)
class PhaseStats:
    """Statistics of one named workload phase (trace replays only).

    A packet belongs to the phase whose window ``[start_cycle, end_cycle)``
    contains its creation cycle; latency and hop statistics cover the
    phase's packets wherever they are delivered, while ``offered_load`` and
    ``throughput`` are normalised by the phase window length.

    Attributes
    ----------
    name:
        Phase name from the trace.
    start_cycle, end_cycle:
        Phase window (end exclusive), in trace cycles.
    packets_created:
        Packets the trace creates inside the window.
    packets_delivered:
        How many of those packets were delivered before the run ended.
    flits_delivered:
        Flits of the delivered packets.
    offered_load:
        Offered traffic of the phase in flits per tile per phase cycle.
    throughput:
        Delivered traffic in flits per tile per phase cycle.
    average_packet_latency, p99_packet_latency:
        Latency (creation to tail arrival) of the phase's delivered packets.
    average_hops:
        Mean hop count of the phase's delivered packets.
    """

    name: str
    start_cycle: int
    end_cycle: int
    packets_created: int
    packets_delivered: int
    flits_delivered: int
    offered_load: float
    throughput: float
    average_packet_latency: float
    p99_packet_latency: float
    average_hops: float

    @property
    def duration(self) -> int:
        """Phase window length in cycles."""
        return self.end_cycle - self.start_cycle

    @property
    def completed(self) -> bool:
        """``True`` when every packet created in the phase was delivered."""
        return self.packets_delivered >= self.packets_created

    @property
    def saturated(self) -> bool:
        """Congestion flag: packets created in the phase were never delivered.

        Phase throughput attributes every delivery (drain arrivals included)
        back to the packet's creation phase, so a completed phase delivers
        exactly its offer — undelivered packets are the one way a phase can
        fall short.
        """
        return not self.completed


@dataclass
class SimulationStats:
    """Aggregated results of one simulation run.

    Attributes
    ----------
    offered_load:
        Injection rate the run was configured with (flits/tile/cycle).
    accepted_load:
        Measured accepted traffic (flits/tile/cycle) during the measurement
        window.
    average_packet_latency:
        Mean latency (creation to tail arrival) of measured packets, in cycles.
    average_network_latency:
        Mean latency from head injection to tail arrival, in cycles.
    p99_packet_latency:
        99th-percentile packet latency.
    average_hops:
        Mean number of router-to-router hops of measured packets.
    packets_measured, packets_delivered, packets_created:
        Packet counters.
    flits_delivered_measurement:
        Flits ejected during the measurement window (any packet).
    measurement_cycles:
        Length of the measurement window.
    num_tiles:
        Number of tiles (for normalising throughput).
    escape_fraction:
        Fraction of measured packets that fell back to the escape layer.
    drained:
        ``True`` if every measured packet arrived before the drain limit.
    phases:
        Per-phase statistics of a trace replay, keyed by phase name in trace
        order; empty for synthetic (Bernoulli) runs.
    """

    offered_load: float
    accepted_load: float
    average_packet_latency: float
    average_network_latency: float
    p99_packet_latency: float
    average_hops: float
    packets_measured: int
    packets_delivered: int
    packets_created: int
    flits_delivered_measurement: int
    measurement_cycles: int
    num_tiles: int
    escape_fraction: float
    drained: bool
    phases: dict[str, PhaseStats] = field(default_factory=dict)

    @property
    def saturated(self) -> bool:
        """Heuristic saturation flag: the network accepted clearly less than offered."""
        if self.offered_load <= 0:
            return False
        return (not self.drained) or self.accepted_load < 0.90 * self.offered_load


@dataclass
class _Accumulator:
    """Mutable statistics collector used by the simulator while running."""

    packets_created: int = 0
    packets_delivered: int = 0
    measured_latencies: list[int] = field(default_factory=list)
    measured_network_latencies: list[int] = field(default_factory=list)
    measured_hops: list[int] = field(default_factory=list)
    measured_escapes: int = 0
    measured_delivered: int = 0
    flits_delivered_measurement: int = 0
    # Phase tracking (configured only for trace replays; None keeps the
    # synthetic hot path untouched).
    phase_names: list[str] | None = None
    phase_spans: list[tuple[int, int]] | None = None
    phase_created: list[int] | None = None
    phase_offered_flits: list[int] | None = None
    phase_of_cycle: list[int] | None = None
    phase_delivered: list[int] = field(default_factory=list)
    phase_flits: list[int] = field(default_factory=list)
    phase_latencies: list[list[int]] = field(default_factory=list)
    phase_hops: list[list[int]] = field(default_factory=list)

    def configure_phases(
        self,
        names: list[str],
        spans: list[tuple[int, int]],
        created: list[int],
        offered_flits: list[int],
        phase_of_cycle: list[int],
    ) -> None:
        """Enable per-phase accumulation (called once before a trace replay)."""
        self.phase_names = names
        self.phase_spans = spans
        self.phase_created = created
        self.phase_offered_flits = offered_flits
        self.phase_of_cycle = phase_of_cycle
        self.phase_delivered = [0] * len(names)
        self.phase_flits = [0] * len(names)
        self.phase_latencies = [[] for _ in names]
        self.phase_hops = [[] for _ in names]

    def record_delivery(
        self, packet: Packet, hops: int, used_escape: bool, in_measurement_window: bool
    ) -> None:
        assert packet.total_latency is not None
        assert packet.network_latency is not None
        self.record_delivery_values(
            creation_cycle=packet.creation_cycle,
            size_flits=packet.size_flits,
            total_latency=packet.total_latency,
            network_latency=packet.network_latency,
            hops=hops,
            is_measured=packet.is_measured,
            used_escape=used_escape,
        )
        del in_measurement_window

    def record_delivery_values(
        self,
        creation_cycle: int,
        size_flits: int,
        total_latency: int,
        network_latency: int,
        hops: int,
        is_measured: bool,
        used_escape: bool,
    ) -> None:
        """Scalar form of :meth:`record_delivery`.

        The struct-of-arrays engine has no :class:`Packet` objects — packet
        metadata lives in flat columns — so it reports deliveries as plain
        scalars.  Both entry points append to the same lists in the same
        order, which is what keeps the two engines' statistics bit-identical.
        """
        self.packets_delivered += 1
        if is_measured:
            self.measured_delivered += 1
            self.measured_latencies.append(total_latency)
            self.measured_network_latencies.append(network_latency)
            self.measured_hops.append(hops)
            if used_escape:
                self.measured_escapes += 1
        if self.phase_of_cycle is not None:
            index = (
                self.phase_of_cycle[creation_cycle]
                if 0 <= creation_cycle < len(self.phase_of_cycle)
                else -1
            )
            if index >= 0:
                self.phase_delivered[index] += 1
                self.phase_flits[index] += size_flits
                self.phase_latencies[index].append(total_latency)
                self.phase_hops[index].append(hops)

    def _finalize_phases(self, num_tiles: int) -> dict[str, PhaseStats]:
        if self.phase_names is None:
            return {}
        assert self.phase_spans is not None
        assert self.phase_created is not None
        assert self.phase_offered_flits is not None
        phases: dict[str, PhaseStats] = {}
        for index, name in enumerate(self.phase_names):
            start, end = self.phase_spans[index]
            window = max(1, end - start)
            latencies = np.array(self.phase_latencies[index], dtype=float)
            hops = np.array(self.phase_hops[index], dtype=float)
            phases[name] = PhaseStats(
                name=name,
                start_cycle=start,
                end_cycle=end,
                packets_created=self.phase_created[index],
                packets_delivered=self.phase_delivered[index],
                flits_delivered=self.phase_flits[index],
                offered_load=self.phase_offered_flits[index] / (window * num_tiles),
                throughput=self.phase_flits[index] / (window * num_tiles),
                average_packet_latency=float(latencies.mean()) if latencies.size else 0.0,
                p99_packet_latency=(
                    float(np.percentile(latencies, 99)) if latencies.size else 0.0
                ),
                average_hops=float(hops.mean()) if hops.size else 0.0,
            )
        return phases

    def finalize(
        self,
        offered_load: float,
        measurement_cycles: int,
        num_tiles: int,
        packets_measured: int,
        drained: bool,
    ) -> SimulationStats:
        latencies = np.array(self.measured_latencies, dtype=float)
        network_latencies = np.array(self.measured_network_latencies, dtype=float)
        hops = np.array(self.measured_hops, dtype=float)
        accepted = (
            self.flits_delivered_measurement / (measurement_cycles * num_tiles)
            if measurement_cycles > 0
            else 0.0
        )
        return SimulationStats(
            offered_load=offered_load,
            accepted_load=accepted,
            average_packet_latency=float(latencies.mean()) if latencies.size else 0.0,
            average_network_latency=(
                float(network_latencies.mean()) if network_latencies.size else 0.0
            ),
            p99_packet_latency=(
                float(np.percentile(latencies, 99)) if latencies.size else 0.0
            ),
            average_hops=float(hops.mean()) if hops.size else 0.0,
            packets_measured=packets_measured,
            packets_delivered=self.packets_delivered,
            packets_created=self.packets_created,
            flits_delivered_measurement=self.flits_delivered_measurement,
            measurement_cycles=measurement_cycles,
            num_tiles=num_tiles,
            escape_fraction=(
                self.measured_escapes / self.measured_delivered
                if self.measured_delivered
                else 0.0
            ),
            drained=drained,
            phases=self._finalize_phases(num_tiles),
        )
