"""Simulation statistics: latency, throughput, and hop-count distributions."""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.simulator.flit import Packet


@dataclass
class SimulationStats:
    """Aggregated results of one simulation run.

    Attributes
    ----------
    offered_load:
        Injection rate the run was configured with (flits/tile/cycle).
    accepted_load:
        Measured accepted traffic (flits/tile/cycle) during the measurement
        window.
    average_packet_latency:
        Mean latency (creation to tail arrival) of measured packets, in cycles.
    average_network_latency:
        Mean latency from head injection to tail arrival, in cycles.
    p99_packet_latency:
        99th-percentile packet latency.
    average_hops:
        Mean number of router-to-router hops of measured packets.
    packets_measured, packets_delivered, packets_created:
        Packet counters.
    flits_delivered_measurement:
        Flits ejected during the measurement window (any packet).
    measurement_cycles:
        Length of the measurement window.
    num_tiles:
        Number of tiles (for normalising throughput).
    escape_fraction:
        Fraction of measured packets that fell back to the escape layer.
    drained:
        ``True`` if every measured packet arrived before the drain limit.
    """

    offered_load: float
    accepted_load: float
    average_packet_latency: float
    average_network_latency: float
    p99_packet_latency: float
    average_hops: float
    packets_measured: int
    packets_delivered: int
    packets_created: int
    flits_delivered_measurement: int
    measurement_cycles: int
    num_tiles: int
    escape_fraction: float
    drained: bool

    @property
    def saturated(self) -> bool:
        """Heuristic saturation flag: the network accepted clearly less than offered."""
        if self.offered_load <= 0:
            return False
        return (not self.drained) or self.accepted_load < 0.90 * self.offered_load


@dataclass
class _Accumulator:
    """Mutable statistics collector used by the simulator while running."""

    packets_created: int = 0
    packets_delivered: int = 0
    measured_latencies: list[int] = field(default_factory=list)
    measured_network_latencies: list[int] = field(default_factory=list)
    measured_hops: list[int] = field(default_factory=list)
    measured_escapes: int = 0
    measured_delivered: int = 0
    flits_delivered_measurement: int = 0

    def record_delivery(
        self, packet: Packet, hops: int, used_escape: bool, in_measurement_window: bool
    ) -> None:
        self.packets_delivered += 1
        if packet.is_measured:
            self.measured_delivered += 1
            assert packet.total_latency is not None
            assert packet.network_latency is not None
            self.measured_latencies.append(packet.total_latency)
            self.measured_network_latencies.append(packet.network_latency)
            self.measured_hops.append(hops)
            if used_escape:
                self.measured_escapes += 1
        del in_measurement_window

    def finalize(
        self,
        offered_load: float,
        measurement_cycles: int,
        num_tiles: int,
        packets_measured: int,
        drained: bool,
    ) -> SimulationStats:
        latencies = np.array(self.measured_latencies, dtype=float)
        network_latencies = np.array(self.measured_network_latencies, dtype=float)
        hops = np.array(self.measured_hops, dtype=float)
        accepted = (
            self.flits_delivered_measurement / (measurement_cycles * num_tiles)
            if measurement_cycles > 0
            else 0.0
        )
        return SimulationStats(
            offered_load=offered_load,
            accepted_load=accepted,
            average_packet_latency=float(latencies.mean()) if latencies.size else 0.0,
            average_network_latency=(
                float(network_latencies.mean()) if network_latencies.size else 0.0
            ),
            p99_packet_latency=(
                float(np.percentile(latencies, 99)) if latencies.size else 0.0
            ),
            average_hops=float(hops.mean()) if hops.size else 0.0,
            packets_measured=packets_measured,
            packets_delivered=self.packets_delivered,
            packets_created=self.packets_created,
            flits_delivered_measurement=self.flits_delivered_measurement,
            measurement_cycles=measurement_cycles,
            num_tiles=num_tiles,
            escape_fraction=(
                self.measured_escapes / self.measured_delivered
                if self.measured_delivered
                else 0.0
            ),
            drained=drained,
        )
